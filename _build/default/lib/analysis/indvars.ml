module Instr = Cards_ir.Instr
module Func = Cards_ir.Func
module Bitset = Cards_util.Bitset

type iv = { ivreg : Instr.reg; step : int }

type strided_access = {
  sa_bid : int;
  sa_idx : int;
  sa_base : Instr.value;
  sa_stride : int;
  sa_is_store : bool;
}

type t = {
  ivs : iv list array;              (* per loop *)
  strided : strided_access list array;
}

let defs_in_loop f (loop : Loops.loop) =
  (* reg -> list of defining instructions inside the loop *)
  let tbl = Hashtbl.create 32 in
  Func.iter_instrs f (fun bid _ ins ->
      if Bitset.mem loop.body bid then
        match Instr.defined_reg ins with
        | Some r ->
          let old = Option.value (Hashtbl.find_opt tbl r) ~default:[] in
          Hashtbl.replace tbl r (ins :: old)
        | None -> ());
  tbl

let loop_invariant cfg (loop : Loops.loop) v =
  match v with
  | Instr.Imm _ | Instr.Fimm _ | Instr.Null | Instr.GlobalAddr _ -> true
  | Instr.Reg r ->
    let f = Cfg.func cfg in
    let defined_inside = ref false in
    Func.iter_instrs f (fun bid _ ins ->
        if Bitset.mem loop.body bid && Instr.defined_reg ins = Some r then
          defined_inside := true);
    not !defined_inside

(* Step of [r] if its updates inside the loop form the canonical
   increment pattern. *)
let step_of defs r =
  let as_step = function
    | Instr.Bin (_, Instr.Add, Instr.Reg r', Instr.Imm c) when r' = r ->
      Some (Int64.to_int c)
    | Instr.Bin (_, Instr.Add, Instr.Imm c, Instr.Reg r') when r' = r ->
      Some (Int64.to_int c)
    | Instr.Bin (_, Instr.Sub, Instr.Reg r', Instr.Imm c) when r' = r ->
      Some (- (Int64.to_int c))
    | _ -> None
  in
  match Option.value (Hashtbl.find_opt defs r) ~default:[] with
  | [ (Instr.Bin (rd, _, _, _) as ins) ] when rd = r -> as_step ins
  | [ Instr.Mov (rd, Instr.Reg t) ] when rd = r -> begin
    (* Lowered pattern: t <- r + c; r <- t. *)
    match Option.value (Hashtbl.find_opt defs t) ~default:[] with
    | [ ins ] -> begin
      match Instr.defined_reg ins with
      | Some td when td = t -> as_step ins
      | _ -> None
    end
    | _ -> None
  end
  | _ -> None

let compute cfg loops =
  let f = Cfg.func cfg in
  let ls = Loops.loops loops in
  let nl = Array.length ls in
  let ivs = Array.make nl [] in
  let strided = Array.make nl [] in
  for li = 0 to nl - 1 do
    let loop = ls.(li) in
    let defs = defs_in_loop f loop in
    let found = ref [] in
    Hashtbl.iter
      (fun r _ ->
        match step_of defs r with
        | Some step when step <> 0 -> found := { ivreg = r; step } :: !found
        | Some _ | None -> ())
      defs;
    ivs.(li) <- !found;
    let is_iv_reg r = List.exists (fun iv -> iv.ivreg = r) !found in
    (* Strided accesses: a load/store whose address comes from a GEP on
       a loop-invariant base indexed by a basic IV.  We look the GEP up
       by scanning the loop for the defining instruction. *)
    let gep_of = Hashtbl.create 16 in
    Func.iter_instrs f (fun bid _ ins ->
        if Bitset.mem loop.body bid then
          match ins with
          | Instr.Gep (r, base, Instr.Reg idx, scale)
            when is_iv_reg idx && loop_invariant cfg loop base ->
            let step =
              (List.find (fun iv -> iv.ivreg = idx) !found).step
            in
            Hashtbl.replace gep_of r (base, step * scale)
          | _ -> ());
    Func.iter_instrs f (fun bid idx ins ->
        if Bitset.mem loop.body bid then
          match ins with
          | Instr.Load (_, _, Instr.Reg a) -> begin
            match Hashtbl.find_opt gep_of a with
            | Some (base, stride) ->
              strided.(li) <-
                { sa_bid = bid; sa_idx = idx; sa_base = base; sa_stride = stride;
                  sa_is_store = false }
                :: strided.(li)
            | None -> ()
          end
          | Instr.Store (_, Instr.Reg a, _) -> begin
            match Hashtbl.find_opt gep_of a with
            | Some (base, stride) ->
              strided.(li) <-
                { sa_bid = bid; sa_idx = idx; sa_base = base; sa_stride = stride;
                  sa_is_store = true }
                :: strided.(li)
            | None -> ()
          end
          | _ -> ())
  done;
  { ivs; strided }

let basic_ivs t li = t.ivs.(li)

let is_iv t li r = List.exists (fun iv -> iv.ivreg = r) t.ivs.(li)

let strided_accesses t li = t.strided.(li)
