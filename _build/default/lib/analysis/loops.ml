module Bitset = Cards_util.Bitset

type loop = {
  header : int;
  body : Bitset.t;
  back_edges : int list;
  depth : int;
  parent : int option;
}

type t = {
  loops : loop array;
  innermost : int array; (* block -> loop index or -1 *)
}

let natural_loop cfg ~header ~latch =
  let n = Cfg.nblocks cfg in
  let rpo_idx = Cfg.rpo_index cfg in
  let body = Bitset.create n in
  Bitset.add body header;
  (* Walk predecessors back from the latch, staying within blocks
     reachable from the entry — an unreachable block that happens to
     branch into the loop is not part of it. *)
  let rec pull b =
    if rpo_idx.(b) >= 0 && not (Bitset.mem body b) then begin
      Bitset.add body b;
      List.iter pull (Cfg.preds cfg b)
    end
  in
  pull latch;
  body

let compute cfg dom =
  let n = Cfg.nblocks cfg in
  (* Collect back edges grouped by header. *)
  let by_header = Hashtbl.create 8 in
  let rpo_idx = Cfg.rpo_index cfg in
  for b = 0 to n - 1 do
    List.iter
      (fun s ->
        if rpo_idx.(b) >= 0 && Dominators.dominates dom s b then begin
          let old = Option.value (Hashtbl.find_opt by_header s) ~default:[] in
          Hashtbl.replace by_header s (b :: old)
        end)
      (Cfg.succs cfg b)
  done;
  let raw =
    Hashtbl.fold
      (fun header latches acc ->
        let body =
          List.fold_left
            (fun acc latch ->
              let bl = natural_loop cfg ~header ~latch in
              ignore (Bitset.union_into acc bl);
              acc)
            (Bitset.create n) latches
        in
        (header, body, latches) :: acc)
      by_header []
  in
  (* Sort by body size descending so parents precede children. *)
  let raw =
    List.sort
      (fun (_, a, _) (_, b, _) -> compare (Bitset.cardinal b) (Bitset.cardinal a))
      raw
  in
  let raw = Array.of_list raw in
  let nl = Array.length raw in
  let parent = Array.make nl None in
  for i = 0 to nl - 1 do
    let _, body_i, _ = raw.(i) in
    (* The innermost enclosing loop is the smallest strictly-larger loop
       containing this loop's header. *)
    let best = ref None in
    for j = 0 to nl - 1 do
      if j <> i then begin
        let hi, _, _ = raw.(i) in
        let _, body_j, _ = raw.(j) in
        if Bitset.mem body_j hi && Bitset.cardinal body_j > Bitset.cardinal body_i then begin
          match !best with
          | None -> best := Some j
          | Some k ->
            let _, body_k, _ = raw.(k) in
            if Bitset.cardinal body_j < Bitset.cardinal body_k then best := Some j
        end
      end
    done;
    parent.(i) <- !best
  done;
  let rec depth_of i =
    match parent.(i) with None -> 1 | Some p -> 1 + depth_of p
  in
  let loops =
    Array.init nl (fun i ->
        let header, body, back_edges = raw.(i) in
        { header; body; back_edges; depth = depth_of i; parent = parent.(i) })
  in
  let innermost = Array.make n (-1) in
  (* Visit loops from outermost to innermost so inner loops overwrite. *)
  let order = Array.init nl (fun i -> i) in
  Array.sort (fun a b -> compare loops.(a).depth loops.(b).depth) order;
  Array.iter
    (fun li -> Bitset.iter (fun b -> innermost.(b) <- li) loops.(li).body)
    order;
  { loops; innermost }

let loops t = t.loops

let loop_of_block t b = if t.innermost.(b) = -1 then None else Some t.innermost.(b)

let in_loop t li b = Bitset.mem t.loops.(li).body b

let preheader cfg loop =
  let outside_preds =
    List.filter (fun p -> not (Bitset.mem loop.body p)) (Cfg.preds cfg loop.header)
  in
  match outside_preds with
  | [ p ] -> begin
    match Cfg.succs cfg p with
    | [ s ] when s = loop.header -> Some p
    | _ -> None
  end
  | _ -> None
