module Irmod = Cards_ir.Irmod
module Func = Cards_ir.Func
module Instr = Cards_ir.Instr
module Bitset = Cards_util.Bitset

(* Descriptor ids touched by an instruction, own accesses and call
   sites alike. *)
let instr_instances dsa ~fname ~bid ~idx = function
  | Instr.Load _ | Instr.Store _ -> Dsa.access_instances dsa ~fname ~bid ~idx
  | Instr.Call _ -> Dsa.callsite_instances dsa ~fname ~bid ~idx
  | _ -> []

let max_use (m : Irmod.t) dsa =
  let n = Dsa.n_descriptors dsa in
  let loops_count = Array.make n 0 in
  let funcs_count = Array.make n 0 in
  List.iter
    (fun (f : Func.t) ->
      let fname = f.name in
      let cfg = Cfg.of_func f in
      let dom = Dominators.compute cfg in
      let loops = Loops.compute cfg dom in
      let ls = Loops.loops loops in
      let touched_by_func = Array.make n false in
      let touched_by_loop = Array.make (Array.length ls) [] in
      Func.iter_instrs f (fun bid idx ins ->
          let insts = instr_instances dsa ~fname ~bid ~idx ins in
          (match ins with
           | Instr.Load _ | Instr.Store _ ->
             List.iter (fun d -> touched_by_func.(d) <- true) insts
           | _ -> ());
          if insts <> [] then
            Array.iteri
              (fun li (loop : Loops.loop) ->
                if Bitset.mem loop.body bid then
                  touched_by_loop.(li) <- insts @ touched_by_loop.(li))
              ls);
      Array.iteri (fun d hit -> if hit then funcs_count.(d) <- funcs_count.(d) + 1)
        touched_by_func;
      Array.iter
        (fun insts ->
          List.iter
            (fun d -> loops_count.(d) <- loops_count.(d) + 1)
            (List.sort_uniq compare insts))
        touched_by_loop)
    m.funcs;
  Array.init n (fun d -> loops_count.(d) + funcs_count.(d))

let max_reach (m : Irmod.t) dsa =
  let n = Dsa.n_descriptors dsa in
  let cg = Callgraph.compute m in
  let score = Array.make n 0 in
  List.iter
    (fun (f : Func.t) ->
      let fname = f.name in
      (* "Long caller/callee chain" = how deep in the call tree the
         accessing function sits (1 + distance from main on the SCC
         condensation), so structures touched by deeply-shared helpers
         rank above ones only touched at top level. *)
      let depth = Callgraph.depth_from_main cg fname in
      let chain = if depth = max_int then 0 else depth + 1 in
      let touched = Array.make n false in
      Func.iter_instrs f (fun bid idx ins ->
          match ins with
          | Instr.Load _ | Instr.Store _ ->
            List.iter
              (fun d -> touched.(d) <- true)
              (Dsa.access_instances dsa ~fname ~bid ~idx)
          | _ -> ());
      Array.iteri
        (fun d hit -> if hit && chain > score.(d) then score.(d) <- chain)
        touched)
    m.funcs;
  score
