(** Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

    Needed by natural-loop detection and by redundant-guard elimination
    (a guard dominated by an equivalent guard is redundant). *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator; [None] for the entry block and for blocks
    unreachable from the entry. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b]?  Reflexive. *)

val dominator_depth : t -> int -> int
(** Distance from the entry in the dominator tree (entry = 0);
    [-1] for unreachable blocks. *)
