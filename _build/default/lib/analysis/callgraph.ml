module Irmod = Cards_ir.Irmod
module Func = Cards_ir.Func
module Instr = Cards_ir.Instr

type t = {
  names : string array;
  index : (string, int) Hashtbl.t;
  callees : int list array;   (* deduplicated *)
  callers : int list array;
  scc : int array;            (* function -> scc id *)
  scc_members : int list array;
  scc_succs : int list array; (* condensation edges: scc -> callee sccs *)
  chain : int array;          (* per scc: longest chain (in sccs) *)
}

let dedup l = List.sort_uniq compare l

let compute (m : Irmod.t) =
  let names = Array.of_list (List.map (fun (f : Func.t) -> f.name) m.funcs) in
  let n = Array.length names in
  let index = Hashtbl.create n in
  Array.iteri (fun i name -> Hashtbl.replace index name i) names;
  let callees = Array.make n [] in
  let callers = Array.make n [] in
  List.iteri
    (fun i (f : Func.t) ->
      let targets = ref [] in
      Func.iter_instrs f (fun _ _ ins ->
          match ins with
          | Instr.Call (_, callee, _) -> begin
            match Hashtbl.find_opt index callee with
            | Some j -> targets := j :: !targets
            | None -> () (* intrinsic *)
          end
          | _ -> ());
      callees.(i) <- dedup !targets)
    m.funcs;
  Array.iteri
    (fun i cs -> List.iter (fun j -> callers.(j) <- i :: callers.(j)) cs)
    callees;
  Array.iteri (fun j l -> callers.(j) <- dedup l) callers;
  (* Tarjan SCC. *)
  let scc = Array.make n (-1) in
  let low = Array.make n 0 in
  let num = Array.make n (-1) in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let scc_count = ref 0 in
  let members = ref [] in
  let rec strongconnect v =
    num.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if num.(w) = -1 then begin
          strongconnect w;
          if low.(w) < low.(v) then low.(v) <- low.(w)
        end
        else if on_stack.(w) && num.(w) < low.(v) then low.(v) <- num.(w))
      callees.(v);
    if low.(v) = num.(v) then begin
      let id = !scc_count in
      incr scc_count;
      let mem = ref [] in
      let rec poploop () =
        match !stack with
        | [] -> assert false
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          scc.(w) <- id;
          mem := w :: !mem;
          if w <> v then poploop ()
      in
      poploop ();
      members := (id, !mem) :: !members
    end
  in
  for v = 0 to n - 1 do
    if num.(v) = -1 then strongconnect v
  done;
  let nsccs = !scc_count in
  let scc_members = Array.make nsccs [] in
  List.iter (fun (id, mem) -> scc_members.(id) <- mem) !members;
  let scc_succs = Array.make nsccs [] in
  Array.iteri
    (fun v cs ->
      List.iter
        (fun w -> if scc.(v) <> scc.(w) then scc_succs.(scc.(v)) <- scc.(w) :: scc_succs.(scc.(v)))
        cs)
    callees;
  Array.iteri (fun i l -> scc_succs.(i) <- dedup l) scc_succs;
  (* Longest chain through the condensation (it is a DAG).  Tarjan
     numbers SCCs in reverse topological order: callees get smaller
     ids, so computing in increasing id order sees callees first. *)
  let chain = Array.make nsccs 1 in
  for id = 0 to nsccs - 1 do
    List.iter
      (fun s -> if chain.(s) + 1 > chain.(id) then chain.(id) <- chain.(s) + 1)
      scc_succs.(id)
  done;
  { names; index; callees; callers; scc; scc_members; scc_succs; chain }

let idx t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Callgraph: unknown function %s" name)

let callees t name = List.map (fun j -> t.names.(j)) t.callees.(idx t name)
let callers t name = List.map (fun j -> t.names.(j)) t.callers.(idx t name)

let scc_of t name = t.scc.(idx t name)

let scc_members t id = List.map (fun j -> t.names.(j)) t.scc_members.(id)

let nsccs t = Array.length t.scc_members

let same_scc t a b = scc_of t a = scc_of t b

let bottom_up t =
  (* Tarjan ids are already bottom-up (callees first). *)
  List.init (nsccs t) (fun id -> scc_members t id)

let chain_length t name = t.chain.(scc_of t name)

let depth_from_main t name =
  match Hashtbl.find_opt t.index "main" with
  | None -> max_int
  | Some start ->
    let n = Array.length t.names in
    let dist = Array.make n max_int in
    dist.(start) <- 0;
    let q = Queue.create () in
    Queue.add start q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun w ->
          if dist.(w) = max_int then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w q
          end)
        t.callees.(v)
    done;
    dist.(idx t name)

let reachable_from t name =
  let n = Array.length t.names in
  let seen = Array.make n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go t.callees.(v)
    end
  in
  go (idx t name);
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if seen.(v) then acc := t.names.(v) :: !acc
  done;
  !acc
