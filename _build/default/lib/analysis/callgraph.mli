(** Call graph with Tarjan SCC condensation.

    The "Max Reach" remoting policy ranks data structures by the length
    of the caller/callee chains of the functions that access them,
    computed on the SCC call graph (§4.2). *)

type t

val compute : Cards_ir.Irmod.t -> t

val callees : t -> string -> string list
(** Direct callees (module functions only; intrinsics excluded). *)

val callers : t -> string -> string list

val scc_of : t -> string -> int
(** SCC index of a function. *)

val scc_members : t -> int -> string list

val nsccs : t -> int

val same_scc : t -> string -> string -> bool
(** Mutually recursive (or identical) functions? *)

val bottom_up : t -> string list list
(** SCCs in bottom-up (callees-first) order, each as its member list. *)

val chain_length : t -> string -> int
(** Longest caller/callee chain through the condensation starting at
    the function's SCC, counting SCCs (a leaf function = 1). *)

val depth_from_main : t -> string -> int
(** Shortest call distance from [main] ([main] = 0), or [max_int] if
    unreachable. *)

val reachable_from : t -> string -> string list
(** Functions transitively reachable (including itself). *)
