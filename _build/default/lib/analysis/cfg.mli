(** Control-flow graph views of a function. *)

type t

val of_func : Cards_ir.Func.t -> t

val func : t -> Cards_ir.Func.t

val nblocks : t -> int

val succs : t -> int -> int list
val preds : t -> int -> int list

val reverse_postorder : t -> int array
(** Blocks reachable from entry in reverse postorder (entry first). *)

val rpo_index : t -> int array
(** [rpo_index.(b)] is the position of block [b] in
    {!reverse_postorder}, or [-1] if unreachable. *)

val reachable : t -> Cards_util.Bitset.t
(** Blocks reachable from the entry. *)
