module Func = Cards_ir.Func
module Bitset = Cards_util.Bitset

type t = {
  f : Func.t;
  preds : int list array;
  rpo : int array;
  rpo_idx : int array;
  reach : Bitset.t;
}

let of_func f =
  let n = Array.length f.Func.blocks in
  let preds = Func.predecessors f in
  let visited = Bitset.create n in
  let order = ref [] in
  (* Iterative DFS computing postorder. *)
  let rec dfs b =
    if not (Bitset.mem visited b) then begin
      Bitset.add visited b;
      List.iter dfs (Func.successors f b);
      order := b :: !order
    end
  in
  if n > 0 then dfs 0;
  let rpo = Array.of_list !order in
  let rpo_idx = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_idx.(b) <- i) rpo;
  { f; preds; rpo; rpo_idx; reach = visited }

let func t = t.f
let nblocks t = Array.length t.f.Func.blocks
let succs t b = Func.successors t.f b
let preds t b = t.preds.(b)
let reverse_postorder t = t.rpo
let rpo_index t = t.rpo_idx
let reachable t = t.reach
