(** Static remoting scores for the compiler-guided policies (§4.2).

    - {e Max Use} ranks data structures by Equation 1:
      [ds = MAX(#loops + #functions)] — the number of loops and
      functions that access the structure.  A loop counts if it
      contains a direct access or a call whose callee accesses the
      structure under that call site's context.
    - {e Max Reach} ranks structures by the length of the
      caller/callee chain leading to the functions that access them
      (computed on the SCC condensation of the call graph), so
      structures touched by deeply-shared helpers outrank ones only
      touched at top level. *)

val max_use : Cards_ir.Irmod.t -> Dsa.t -> int array
(** [max_use m dsa].(desc_id) = Equation-1 score. *)

val max_reach : Cards_ir.Irmod.t -> Dsa.t -> int array
(** [max_reach m dsa].(desc_id) = longest-chain score. *)
