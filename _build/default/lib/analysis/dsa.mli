(** Data-Structure Analysis (DSA), after SeaDSA / Lattner–Adve.

    A unification-based (Steensgaard-style), inter-procedural,
    context-sensitive heap analysis.  Memory objects are abstract
    {e nodes}; instructions add equality constraints; functions are
    summarized bottom-up over the call-graph SCCs, and each call site
    {e clones} the callee's heap nodes (globals excepted) into the
    caller — that cloning is what makes the analysis context-sensitive
    and lets [ds1] and [ds2] of the paper's Listing 1 (both returned by
    the same [alloc] function) be recognized as {e distinct, disjoint
    data structures} (paper Fig. 2).

    On top of the node graph the module computes everything the CaRDS
    pipeline needs:

    - the {e handle plan} of Lattner–Adve pool allocation (Algorithm 1):
      which nodes become extra handle parameters of each function
      ([argnodes]) and which get a [ds_init] in the function itself
      ([init_nodes], becoming static {e descriptors});
    - per-call-site bindings from callee handle parameters to caller
      nodes;
    - per-instruction {e instance sets}: which descriptors a given
      load/store (or call) may touch — the raw material for the
      Max Use / Max Reach remoting scores;
    - per-descriptor shape facts (element size, recursive?, pointer
      fields) feeding the prefetch-policy classification. *)

type node = int
(** Canonical node id (stable after [analyze] returns). *)

type desc_info = {
  desc_id : int;
  desc_init_func : string;      (** function whose entry runs [ds_init] *)
  desc_node : node;
  desc_elem_size : int;         (** dominant access granule, bytes *)
  desc_recursive : bool;        (** node reaches itself through pointees *)
  desc_ptr_fields : int;        (** distinct constant offsets holding pointers *)
  desc_strided : bool;          (** accessed with loop-strided addressing *)
  desc_alloc_sites : (string * int * int) list;
      (** contributing [(func, block, index)] malloc sites *)
}

type t

val analyze : Cards_ir.Irmod.t -> t
(** Run the full analysis.  The module must verify (see
    {!Cards_ir.Verify}); [main] must exist. *)

(** {2 Node graph queries} *)

val canonical : t -> node -> node

val is_heap : t -> node -> bool

val node_of_value : t -> fname:string -> Cards_ir.Instr.value -> node option
(** The memory object a pointer value points into, if the analysis
    tracked one ([None] for immediates / untracked registers). *)

val value_is_managed : t -> fname:string -> Cards_ir.Instr.value -> bool
(** Does the value point into a heap data structure (so accesses
    through it need guards)? *)

val nodes_disjoint : t -> node -> node -> bool

val escaping : t -> fname:string -> node -> bool
(** Reachable from the function's parameters, return value, or a
    global — Algorithm 1's [escapes(n)]. *)

(** {2 Pool-allocation handle plan (Algorithm 1)} *)

val argnodes : t -> string -> node list
(** Escaping nodes of the function that require a handle parameter, in
    the canonical order used by {!callsite_bindings}.  Empty for
    [main]. *)

val init_nodes : t -> string -> (node * int) list
(** Nodes the function must [ds_init], with their descriptor ids. *)

val callsite_bindings : t -> fname:string -> bid:int -> idx:int -> node list
(** For the call instruction at [(bid, idx)], the caller-side nodes
    matching the callee's {!argnodes}, in order.  Empty for calls to
    functions with no argnodes. *)

val malloc_node : t -> fname:string -> bid:int -> idx:int -> node option
(** The node a malloc site allocates into. *)

(** {2 Descriptors (static data structures)} *)

val descriptors : t -> desc_info list
(** All static data-structure descriptors, by increasing id. *)

val n_descriptors : t -> int

val desc_info : t -> int -> desc_info

(** {2 Instance attribution (for remoting scores)} *)

val access_instances : t -> fname:string -> bid:int -> idx:int -> int list
(** Descriptor ids a load/store instruction may touch. *)

val callsite_instances : t -> fname:string -> bid:int -> idx:int -> int list
(** Descriptor ids the callee of a call instruction may touch,
    transitively, under this call site's context. *)

val func_instances : t -> string -> int list
(** Descriptor ids the function may touch transitively (its own
    accesses plus all call sites). *)

val node_descs : t -> node -> int list
(** Descriptor ids (instances) an abstract node may denote. *)

val callsite_accessed_nodes :
  t -> fname:string -> bid:int -> idx:int -> node list * int list
(** [(caller_nodes, hidden_descs)] for a call instruction: the heap
    nodes the callee may access expressed in the {e caller's} graph,
    plus descriptor ids of callee-internal structures that have no
    caller-side node.  Code versioning uses this to decide whether a
    loop containing the call can be checked with loop-invariant base
    pointers. *)
