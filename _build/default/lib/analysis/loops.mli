(** Natural-loop detection from back edges.

    CaRDS's prefetch analysis, guard hoisting, and code versioning all
    operate per loop; [Usecount]'s Equation-1 score counts loops that
    access a data structure. *)

type loop = {
  header : int;               (** loop header block id *)
  body : Cards_util.Bitset.t; (** blocks in the loop, including header *)
  back_edges : int list;      (** sources of the back edges *)
  depth : int;                (** nesting depth; outermost = 1 *)
  parent : int option;        (** index of the enclosing loop, if any *)
}

type t

val compute : Cfg.t -> Dominators.t -> t

val loops : t -> loop array
(** All natural loops, outermost first (by nesting depth). *)

val loop_of_block : t -> int -> int option
(** Index (into {!loops}) of the innermost loop containing the block. *)

val in_loop : t -> int -> int -> bool
(** [in_loop t li b]: is block [b] inside loop [li]? *)

val preheader : Cfg.t -> loop -> int option
(** The unique out-of-loop predecessor of the header, if there is
    exactly one and it has the header as its only successor. *)
