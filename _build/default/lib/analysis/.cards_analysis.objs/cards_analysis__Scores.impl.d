lib/analysis/scores.ml: Array Callgraph Cards_ir Cards_util Cfg Dominators Dsa List Loops
