lib/analysis/dominators.ml: Array Cfg List
