lib/analysis/dsa.ml: Array Callgraph Cards_ir Cards_util Cfg Dominators Hashtbl Indvars Int Int64 List Loops Option Printf Set
