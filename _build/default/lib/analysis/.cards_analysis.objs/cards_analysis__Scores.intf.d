lib/analysis/scores.mli: Cards_ir Dsa
