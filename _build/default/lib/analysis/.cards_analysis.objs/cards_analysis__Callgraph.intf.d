lib/analysis/callgraph.mli: Cards_ir
