lib/analysis/cfg.ml: Array Cards_ir Cards_util List
