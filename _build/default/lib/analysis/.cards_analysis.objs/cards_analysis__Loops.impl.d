lib/analysis/loops.ml: Array Cards_util Cfg Dominators Hashtbl List Option
