lib/analysis/indvars.ml: Array Cards_ir Cards_util Cfg Hashtbl Int64 List Loops Option
