lib/analysis/cfg.mli: Cards_ir Cards_util
