lib/analysis/callgraph.ml: Array Cards_ir Hashtbl List Printf Queue
