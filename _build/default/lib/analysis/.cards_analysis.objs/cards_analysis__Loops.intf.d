lib/analysis/loops.mli: Cards_util Cfg Dominators
