lib/analysis/indvars.mli: Cards_ir Cfg Loops
