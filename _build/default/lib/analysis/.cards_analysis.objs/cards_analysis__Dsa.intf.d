lib/analysis/dsa.mli: Cards_ir
