(** Cycle-cost model, calibrated against the paper's Table 1.

    | Runtime event        | Local | Remote |
    |----------------------|-------|--------|
    | CaRDS read fault     |   378 |   59 K |
    | CaRDS write fault    |   384 |   59 K |
    | TrackFM read guard   |   462 |   46 K |
    | TrackFM write guard  |   579 |   47 K |

    "Local" is the full guard path when the object is already resident
    (custody check + [cards_deref] mapping); "Remote" adds the network
    fetch, which the {!Cards_net.Fabric} supplies.  Baseline
    instruction costs are rough per-class CPU costs so that compute /
    memory ratios stay sane; the far-memory terms dominate whenever
    they matter. *)

type t = {
  guard_local_read : int;   (** guard on a resident object, read *)
  guard_local_write : int;
  guard_unmanaged : int;    (** custody check that falls through *)
  loop_check_per_ds : int;  (** versioning check, per handle *)
  ds_init : int;
  ds_alloc : int;
  deref_map : int;          (** address→object mapping inside a fault *)
  alu : int;
  mul_div : int;
  branch : int;
  call : int;
  mem_access : int;         (** plain L1-ish access, incl. unguarded *)
}

val cards : t
val trackfm : t

val cards_remote_object_bytes : int
(** Default object size whose demand fetch reproduces Table 1's 59 K
    cycles: 4096. *)
