module Rng = Cards_util.Rng

type t =
  | All_remotable
  | Linear
  | Random of int
  | Max_reach
  | Max_use
  | All_local
  | Explicit of bool array

let name = function
  | All_remotable -> "all-remotable"
  | Linear -> "linear"
  | Random _ -> "random"
  | Max_reach -> "max-reach"
  | Max_use -> "max-use"
  | All_local -> "all-local"
  | Explicit _ -> "explicit"

let top_k_by score infos k =
  let n = Array.length infos in
  let quota = int_of_float (ceil (k *. float_of_int n)) in
  let order = Array.init n (fun i -> i) in
  (* Sort by score descending, id ascending on ties (program order). *)
  Array.sort
    (fun a b ->
      let c = compare (score infos.(b)) (score infos.(a)) in
      if c <> 0 then c else compare a b)
    order;
  let pinned = Array.make n false in
  Array.iteri (fun rank sid -> if rank < quota then pinned.(sid) <- true) order;
  pinned

let pinned_preference t ~infos ~k =
  let n = Array.length infos in
  let k = Float.max 0.0 (Float.min 1.0 k) in
  match t with
  | All_remotable -> Array.make n false
  | All_local -> Array.make n true
  | Linear ->
    let quota = int_of_float (ceil (k *. float_of_int n)) in
    Array.init n (fun i -> i < quota)
  | Random seed ->
    let rng = Rng.create seed in
    let quota = int_of_float (ceil (k *. float_of_int n)) in
    let order = Array.init n (fun i -> i) in
    Rng.shuffle rng order;
    let pinned = Array.make n false in
    Array.iteri (fun rank sid -> if rank < quota then pinned.(sid) <- true) order;
    pinned
  | Max_reach -> top_k_by (fun (i : Static_info.t) -> i.score_reach) infos k
  | Max_use -> top_k_by (fun (i : Static_info.t) -> i.score_use) infos k
  | Explicit pinned ->
    if Array.length pinned <> n then
      invalid_arg "Policy.pinned_preference: explicit set has wrong length";
    Array.copy pinned
