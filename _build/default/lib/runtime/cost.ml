type t = {
  guard_local_read : int;
  guard_local_write : int;
  guard_unmanaged : int;
  loop_check_per_ds : int;
  ds_init : int;
  ds_alloc : int;
  deref_map : int;
  alu : int;
  mul_div : int;
  branch : int;
  call : int;
  mem_access : int;
}

let cards =
  { guard_local_read = 378;
    guard_local_write = 384;
    guard_unmanaged = 3;     (* shr + je, Fig. 3 *)
    loop_check_per_ds = 24;
    ds_init = 400;
    ds_alloc = 120;
    deref_map = 40;
    alu = 1;
    mul_div = 4;
    branch = 1;
    call = 8;
    mem_access = 4 }

let trackfm =
  { cards with
    guard_local_read = 462;
    guard_local_write = 579;
    guard_unmanaged = 3 }

let cards_remote_object_bytes = 4096
