let handle_bits = 16
let offset_bits = 47

let max_handle = (1 lsl handle_bits) - 2 (* 0 is reserved for unmanaged *)
let max_offset = (1 lsl offset_bits) - 1

let encode ~ds ~offset =
  if ds < 1 || ds > max_handle then
    invalid_arg (Printf.sprintf "Addr.encode: handle %d out of range" ds);
  if offset < 0 || offset > max_offset then
    invalid_arg (Printf.sprintf "Addr.encode: offset %d out of range" offset);
  (ds lsl offset_bits) lor offset

let unmanaged ~offset =
  if offset < 0 || offset > max_offset then
    invalid_arg (Printf.sprintf "Addr.unmanaged: offset %d out of range" offset);
  offset

let is_managed a = a lsr offset_bits <> 0

let ds_of a =
  let h = a lsr offset_bits in
  if h = 0 then invalid_arg "Addr.ds_of: unmanaged address";
  h

let offset_of a = a land max_offset
