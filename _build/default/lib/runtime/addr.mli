(** Tagged-pointer encoding (paper §4.2, Listing 2 / Fig. 3).

    CaRDS appends the data-structure handle to the non-canonical bits
    of every pointer it hands out.  On x86-64 those are bits 48–63; in
    this simulator pointers are 63-bit OCaml ints, so the handle lives
    in bits 47–62 and the byte offset within the structure's pool in
    bits 0–46.  Handle value 0 marks unmanaged memory (globals and
    untracked allocations), making the custody check a single shift:
    [addr lsr offset_bits <> 0]. *)

val handle_bits : int
(** 16 *)

val offset_bits : int
(** 47 *)

val max_handle : int
(** Largest encodable data-structure handle. *)

val max_offset : int

val encode : ds:int -> offset:int -> int
(** [encode ~ds ~offset] tags a pool offset with handle [ds] (≥ 1).
    @raise Invalid_argument if out of range. *)

val unmanaged : offset:int -> int
(** An untagged (handle 0) address. *)

val is_managed : int -> bool
(** The custody check. *)

val ds_of : int -> int
(** Handle of a managed address (≥ 1).
    @raise Invalid_argument on unmanaged addresses. *)

val offset_of : int -> int
(** Pool offset (valid for managed and unmanaged addresses alike). *)
