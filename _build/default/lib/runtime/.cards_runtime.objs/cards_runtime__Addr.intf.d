lib/runtime/addr.mli:
