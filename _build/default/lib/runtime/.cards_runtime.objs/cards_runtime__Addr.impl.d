lib/runtime/addr.ml: Printf
