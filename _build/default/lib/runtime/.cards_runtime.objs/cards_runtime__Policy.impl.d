lib/runtime/policy.ml: Array Cards_util Float Static_info
