lib/runtime/prefetcher.ml: Array Hashtbl List Static_info
