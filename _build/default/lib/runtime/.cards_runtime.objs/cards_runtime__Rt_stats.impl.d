lib/runtime/rt_stats.ml: Hashtbl List
