lib/runtime/static_info.ml: Printf
