lib/runtime/prefetcher.mli: Static_info
