lib/runtime/cost.ml:
