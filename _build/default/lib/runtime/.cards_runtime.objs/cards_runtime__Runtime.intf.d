lib/runtime/runtime.mli: Cards_net Cost Policy Rt_stats Static_info
