lib/runtime/cost.mli:
