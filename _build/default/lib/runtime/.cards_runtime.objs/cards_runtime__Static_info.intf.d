lib/runtime/static_info.mli:
