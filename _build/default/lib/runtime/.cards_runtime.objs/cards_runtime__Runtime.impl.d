lib/runtime/runtime.ml: Addr Array Bytes Cards_net Cards_util Cost Int64 List Policy Prefetcher Printf Queue Rt_stats Static_info
