lib/runtime/rt_stats.mli:
