lib/runtime/policy.mli: Static_info
