type prefetch_class = No_prefetch | Stride | Greedy_recursive | Jump_pointer

type t = {
  sid : int;
  name : string;
  obj_size : int;
  prefetch : prefetch_class;
  score_use : int;
  score_reach : int;
  recursive : bool;
  elem_size : int;
}

let default ~sid =
  { sid; name = Printf.sprintf "ds%d" sid; obj_size = 4096;
    prefetch = No_prefetch; score_use = 0; score_reach = 0;
    recursive = false; elem_size = 8 }

let prefetch_class_name = function
  | No_prefetch -> "none"
  | Stride -> "stride"
  | Greedy_recursive -> "greedy"
  | Jump_pointer -> "jump"
