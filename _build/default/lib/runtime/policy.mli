(** Remoting policy selection (paper §4.2).

    Local memory is split into {e pinned} memory (non-remotable) and
    {e remotable} memory.  The tunable parameter [k] is the fraction of
    data structures that should prefer pinned memory; the policy
    decides {e which} ones:

    - {e Linear}: the first ⌈k·n⌉ structures in program (ds_init)
      order — "allocates pinned memory sequentially in program order,
      switching to remotable memory once local memory is exhausted";
    - {e Random}: a random k-fraction;
    - {e Max Reach}: the top k by SCC caller/callee chain length of the
      functions using them;
    - {e Max Use}: the top k by Equation 1 (#loops + #functions);
    - {e All_remotable}: the conservative TrackFM stance (k ignored);
    - {e All_local}: everything pinned (an upper bound / oracle);
    - {e Explicit}: a precomputed pinned set (used by the Mira
      profile-guided baseline).

    Whatever the preference, the runtime can still override it when the
    structure does not fit (see {!Runtime}). *)

type t =
  | All_remotable
  | Linear
  | Random of int  (** seed *)
  | Max_reach
  | Max_use
  | All_local
  | Explicit of bool array

val name : t -> string

val pinned_preference : t -> infos:Static_info.t array -> k:float -> bool array
(** [pinned_preference p ~infos ~k].(sid) tells whether descriptor
    [sid] should prefer pinned memory.  [k] is clamped to [0,1].
    Ties in score-based policies break toward lower descriptor ids
    (program order). *)
