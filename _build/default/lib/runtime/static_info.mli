(** Compiler-provided static descriptor for one data structure.

    This is the information [ds_init] hands the runtime (paper §4.2):
    object-size hint, prefetch class, and the static policy scores the
    remoting policies rank by.  It is the contract between
    {!Cards_transform} / {!Cards_analysis} and the runtime. *)

type prefetch_class = No_prefetch | Stride | Greedy_recursive | Jump_pointer

type t = {
  sid : int;                 (** static descriptor id (ds_init operand) *)
  name : string;             (** diagnostic label, e.g. "main#0" *)
  obj_size : int;            (** power-of-two object size hint, bytes *)
  prefetch : prefetch_class;
  score_use : int;           (** Equation-1 Max Use score *)
  score_reach : int;         (** Max Reach (SCC chain) score *)
  recursive : bool;
  elem_size : int;
}

val default : sid:int -> t
(** A descriptor with neutral hints (used for untracked allocations and
    in unit tests). *)

val prefetch_class_name : prefetch_class -> string
