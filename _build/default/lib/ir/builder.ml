type proto_block = {
  mutable rev_instrs : Instr.instr list;
  mutable pterm : Instr.term option;
}

type t = {
  fname : string;
  fparams : (Instr.reg * Types.t) list;
  param_names : (string * Instr.reg) list;
  fret : Types.t;
  mutable tys : Types.t list; (* reversed: register types *)
  mutable count : int;
  mutable blocks : proto_block array;
  mutable nblocks : int;
  mutable cursor : int;
}

let fresh t ty =
  let r = t.count in
  t.count <- r + 1;
  t.tys <- ty :: t.tys;
  r

let add_block t =
  let b = { rev_instrs = []; pterm = None } in
  if t.nblocks = Array.length t.blocks then begin
    let cap = max 8 (2 * Array.length t.blocks) in
    let nb = Array.make cap b in
    Array.blit t.blocks 0 nb 0 t.nblocks;
    t.blocks <- nb
  end;
  t.blocks.(t.nblocks) <- b;
  t.nblocks <- t.nblocks + 1;
  t.nblocks - 1

let create ~name ~params ~ret =
  let t =
    { fname = name; fparams = []; param_names = []; fret = ret;
      tys = []; count = 0; blocks = [||]; nblocks = 0; cursor = 0 }
  in
  let regs = List.map (fun (pname, ty) -> (pname, fresh t ty, ty)) params in
  let t =
    { t with
      fparams = List.map (fun (_, r, ty) -> (r, ty)) regs;
      param_names = List.map (fun (pname, r, _) -> (pname, r)) regs }
  in
  let entry = add_block t in
  t.cursor <- entry;
  t

let name t = t.fname

let param t pname = Instr.Reg (List.assoc pname t.param_names)

let reg_ty t r =
  let tys = Array.of_list (List.rev t.tys) in
  tys.(r)

let value_ty t = function
  | Instr.Reg r -> reg_ty t r
  | Instr.Imm _ -> Types.I64
  | Instr.Fimm _ -> Types.F64
  | Instr.Null -> Types.Ptr Types.I64
  | Instr.GlobalAddr _ -> Types.Ptr Types.I64

let new_block t = add_block t

let set_block t b =
  if b < 0 || b >= t.nblocks then invalid_arg "Builder.set_block: no such block";
  t.cursor <- b

let current_block t = t.cursor

let emit t ins =
  let b = t.blocks.(t.cursor) in
  if b.pterm <> None then
    invalid_arg
      (Printf.sprintf "Builder.emit: block L%d of %s already sealed" t.cursor t.fname);
  b.rev_instrs <- ins :: b.rev_instrs

let bin t op a b =
  let ty = if Instr.is_float_binop op then Types.F64 else
      (* Pointer arithmetic through Add keeps pointer-ness. *)
      match op, value_ty t a with
      | (Instr.Add | Instr.Sub), (Types.Ptr _ as pty) -> pty
      | _ -> Types.I64
  in
  let r = fresh t ty in
  emit t (Instr.Bin (r, op, a, b));
  Instr.Reg r

let cmp t op a b =
  let r = fresh t Types.I64 in
  emit t (Instr.Cmp (r, op, a, b));
  Instr.Reg r

let mov t v =
  let r = fresh t (value_ty t v) in
  emit t (Instr.Mov (r, v));
  Instr.Reg r

let i2f t v =
  let r = fresh t Types.F64 in
  emit t (Instr.I2f (r, v));
  Instr.Reg r

let f2i t v =
  let r = fresh t Types.I64 in
  emit t (Instr.F2i (r, v));
  Instr.Reg r

let load t ty addr =
  let r = fresh t ty in
  emit t (Instr.Load (r, ty, addr));
  Instr.Reg r

let store t ty ~addr v = emit t (Instr.Store (ty, addr, v))

let gep t ~ty base idx scale =
  let r = fresh t ty in
  emit t (Instr.Gep (r, base, idx, scale));
  Instr.Reg r

let malloc t ~ty size =
  let r = fresh t ty in
  emit t (Instr.Malloc (r, size));
  Instr.Reg r

let call t ~ty fname args =
  let r = fresh t ty in
  emit t (Instr.Call (Some r, fname, args));
  Instr.Reg r

let call_void t fname args = emit t (Instr.Call (None, fname, args))

let seal t term =
  let b = t.blocks.(t.cursor) in
  if b.pterm <> None then
    invalid_arg
      (Printf.sprintf "Builder: block L%d of %s already sealed" t.cursor t.fname);
  b.pterm <- Some term

let br t target = seal t (Instr.Br target)
let cbr t v bt bf = seal t (Instr.Cbr (v, bt, bf))
let ret t v = seal t (Instr.Ret v)

let sealed t b = t.blocks.(b).pterm <> None

let finish t =
  let blocks =
    Array.init t.nblocks (fun i ->
        let pb = t.blocks.(i) in
        match pb.pterm with
        | None ->
          invalid_arg
            (Printf.sprintf "Builder.finish: block L%d of %s not terminated" i t.fname)
        | Some term ->
          { Func.bid = i; instrs = Array.of_list (List.rev pb.rev_instrs); term })
  in
  { Func.name = t.fname; params = t.fparams; ret = t.fret;
    reg_tys = Array.of_list (List.rev t.tys); blocks }

(* A canonical counted loop:
     header: iv < limit ? body : exit
     body:   ... ; iv += step; br header
   The induction variable is a dedicated register updated in place,
   which is the pattern Indvars recognizes. *)
let build_for t ~init ~limit ~step body =
  let iv = fresh t Types.I64 in
  emit t (Instr.Mov (iv, init));
  let header = new_block t in
  let bodyb = new_block t in
  let exitb = new_block t in
  br t header;
  set_block t header;
  let c = cmp t Instr.Lt (Instr.Reg iv) limit in
  cbr t c bodyb exitb;
  set_block t bodyb;
  body t (Instr.Reg iv);
  emit t (Instr.Bin (iv, Instr.Add, Instr.Reg iv, Instr.Imm (Int64.of_int step)));
  br t header;
  set_block t exitb

let build_while t ~cond body =
  let header = new_block t in
  let bodyb = new_block t in
  let exitb = new_block t in
  br t header;
  set_block t header;
  let c = cond t in
  cbr t c bodyb exitb;
  set_block t bodyb;
  body t;
  br t header;
  set_block t exitb

let build_if t c then_ else_ =
  let bt = new_block t in
  let bf = new_block t in
  let join = new_block t in
  cbr t c bt bf;
  set_block t bt;
  then_ t;
  if not (sealed t (current_block t)) then br t join;
  set_block t bf;
  else_ t;
  if not (sealed t (current_block t)) then br t join;
  set_block t join
