(** Pretty-printing of functions and whole modules, in a textual form
    close to LLVM's.  Used by tests to snapshot transformations (e.g.,
    that pool allocation rewrote Listing 1 the way §4.1 shows). *)

val func_to_string : Func.t -> string

val module_to_string : Irmod.t -> string

val pp_func : Format.formatter -> Func.t -> unit

val pp_module : Format.formatter -> Irmod.t -> unit
