(** IR well-formedness checking.

    Run after the frontend and after every transformation pass; a
    transform that produces ill-formed IR is a compiler bug, and
    catching it here (rather than as a weird interpreter crash) mirrors
    LLVM's verifier discipline. *)

type error = {
  where : string;  (** "func:block" locus *)
  what : string;
}

val check_func : Irmod.t -> Func.t -> error list
(** Structural checks for one function: register indices within range
    (including parameter registers), branch targets exist, blocks
    sealed, call targets resolve (to a module function or an intrinsic)
    with matching arity, entry block present, scalar-only loads/stores,
    positive GEP scales. *)

val check_module : Irmod.t -> error list

val check_exn : Irmod.t -> unit
(** @raise Failure with a readable report if any check fails. *)
