type t =
  | I64
  | F64
  | Ptr of t
  | Struct of string * t array
  | Void

let rec size_of = function
  | I64 | F64 | Ptr _ -> 8
  | Struct (_, fields) -> Array.fold_left (fun acc f -> acc + size_of f) 0 fields
  | Void -> 0

let field_offset ty i =
  match ty with
  | Struct (_, fields) ->
    if i < 0 || i >= Array.length fields then
      invalid_arg "Types.field_offset: field index out of range";
    let off = ref 0 in
    for j = 0 to i - 1 do
      off := !off + size_of fields.(j)
    done;
    !off
  | _ -> invalid_arg "Types.field_offset: not a struct"

let field_type ty i =
  match ty with
  | Struct (_, fields) ->
    if i < 0 || i >= Array.length fields then
      invalid_arg "Types.field_type: field index out of range";
    fields.(i)
  | _ -> invalid_arg "Types.field_type: not a struct"

let is_pointer = function Ptr _ -> true | I64 | F64 | Struct _ | Void -> false

let pointee = function
  | Ptr t -> t
  | I64 | F64 | Struct _ | Void -> invalid_arg "Types.pointee: not a pointer"

let rec equal a b =
  match a, b with
  | I64, I64 | F64, F64 | Void, Void -> true
  | Ptr a, Ptr b -> equal a b
  | Struct (_, fa), Struct (_, fb) ->
    Array.length fa = Array.length fb
    && begin
      let ok = ref true in
      Array.iteri (fun i f -> if not (equal f fb.(i)) then ok := false) fa;
      !ok
    end
  | (I64 | F64 | Ptr _ | Struct _ | Void), _ -> false

let rec pp fmt = function
  | I64 -> Format.pp_print_string fmt "i64"
  | F64 -> Format.pp_print_string fmt "f64"
  | Ptr t -> Format.fprintf fmt "%a*" pp t
  | Struct (name, fields) ->
    Format.fprintf fmt "%%%s{" name;
    Array.iteri
      (fun i f ->
        if i > 0 then Format.pp_print_string fmt ", ";
        pp fmt f)
      fields;
    Format.pp_print_string fmt "}"
  | Void -> Format.pp_print_string fmt "void"

let to_string t = Format.asprintf "%a" pp t
