type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type lexed = { tok : token; pos : Ast.pos }

let keywords =
  [ "int"; "double"; "void"; "struct"; "if"; "else"; "while"; "for";
    "return"; "break"; "continue"; "malloc"; "free"; "sizeof"; "null" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let token_to_string = function
  | INT i -> Int64.to_string i
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"

type state = {
  src : string;
  mutable i : int;
  mutable line : int;
  mutable bol : int; (* index of beginning of current line *)
}

let pos st = { Ast.line = st.line; col = st.i - st.bol + 1 }

let peek st k =
  if st.i + k < String.length st.src then Some st.src.[st.i + k] else None

let advance st =
  (match peek st 0 with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.bol <- st.i + 1
   | Some _ | None -> ());
  st.i <- st.i + 1

let rec skip_ws_comments st =
  match peek st 0 with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws_comments st
  | Some '/' when peek st 1 = Some '/' ->
    while peek st 0 <> None && peek st 0 <> Some '\n' do advance st done;
    skip_ws_comments st
  | Some '/' when peek st 1 = Some '*' ->
    let p = pos st in
    advance st; advance st;
    let rec close () =
      match peek st 0, peek st 1 with
      | Some '*', Some '/' -> advance st; advance st
      | Some _, _ -> advance st; close ()
      | None, _ -> Ast.error p "unterminated block comment"
    in
    close ();
    skip_ws_comments st
  | Some _ | None -> ()

let lex_number st =
  let p = pos st in
  let start = st.i in
  while (match peek st 0 with Some c -> is_digit c | None -> false) do advance st done;
  let is_float =
    match peek st 0, peek st 1 with
    | Some '.', Some c when is_digit c -> true
    | Some '.', (Some _ | None) -> true
    | _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st 0 with Some c -> is_digit c | None -> false) do advance st done;
    (match peek st 0 with
     | Some ('e' | 'E') ->
       advance st;
       (match peek st 0 with Some ('+' | '-') -> advance st | _ -> ());
       while (match peek st 0 with Some c -> is_digit c | None -> false) do advance st done
     | _ -> ());
    let text = String.sub st.src start (st.i - start) in
    match float_of_string_opt text with
    | Some f -> { tok = FLOAT f; pos = p }
    | None -> Ast.error p (Printf.sprintf "malformed float literal %S" text)
  end
  else begin
    let text = String.sub st.src start (st.i - start) in
    match Int64.of_string_opt text with
    | Some i -> { tok = INT i; pos = p }
    | None -> Ast.error p (Printf.sprintf "malformed int literal %S" text)
  end

let lex_ident st =
  let p = pos st in
  let start = st.i in
  while (match peek st 0 with Some c -> is_ident_char c | None -> false) do advance st done;
  let text = String.sub st.src start (st.i - start) in
  if List.mem text keywords then { tok = KW text; pos = p }
  else { tok = IDENT text; pos = p }

let two_char_puncts = [ "=="; "!="; "<="; ">="; "&&"; "||"; "->" ]
let one_char_puncts = "(){}[];,*/%+-=<>!."

let lex_punct st =
  let p = pos st in
  let two =
    match peek st 0, peek st 1 with
    | Some a, Some b ->
      let s = Printf.sprintf "%c%c" a b in
      if List.mem s two_char_puncts then Some s else None
    | _ -> None
  in
  match two with
  | Some s ->
    advance st; advance st;
    { tok = PUNCT s; pos = p }
  | None -> begin
    match peek st 0 with
    | Some c when String.contains one_char_puncts c ->
      advance st;
      { tok = PUNCT (String.make 1 c); pos = p }
    | Some c -> Ast.error p (Printf.sprintf "illegal character %C" c)
    | None -> { tok = EOF; pos = p }
  end

let tokenize src =
  let st = { src; i = 0; line = 1; bol = 0 } in
  let rec loop acc =
    skip_ws_comments st;
    match peek st 0 with
    | None -> List.rev ({ tok = EOF; pos = pos st } :: acc)
    | Some c when is_digit c -> loop (lex_number st :: acc)
    | Some c when is_ident_start c -> loop (lex_ident st :: acc)
    | Some _ -> loop (lex_punct st :: acc)
  in
  loop []
