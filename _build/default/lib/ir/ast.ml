type pos = { line : int; col : int }

type ty =
  | TInt
  | TDouble
  | TVoid
  | TPtr of ty
  | TStruct of string

type binop =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Band | Bor

type unop = Uneg | Unot

type expr = { e : expr_node; epos : pos }

and expr_node =
  | Eint of int64
  | Efloat of float
  | Enull
  | Evar of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ecall of string * expr list
  | Eindex of expr * expr
  | Earrow of expr * string
  | Ederef of expr
  | Emalloc of expr
  | Esizeof of ty

type lvalue =
  | Lvar of string
  | Lindex of expr * expr
  | Larrow of expr * string
  | Lderef of expr

type stmt = { s : stmt_node; spos : pos }

and stmt_node =
  | Sdecl of ty * string * expr option
  | Sassign of lvalue * expr
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sfor of stmt option * expr option * stmt option * stmt
  | Sreturn of expr option
  | Sblock of stmt list
  | Sbreak
  | Scontinue
  | Sfree of expr

type struct_decl = { sname : string; sfields : (ty * string) list }

type func_decl = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt list;
}

type global_decl = { gname : string; gty : ty; ginit : expr option }

type decl =
  | Dstruct of struct_decl
  | Dglobal of global_decl
  | Dfunc of func_decl

type program = decl list

exception Syntax_error of pos * string

let error pos msg = raise (Syntax_error (pos, msg))

let rec pp_ty fmt = function
  | TInt -> Format.pp_print_string fmt "int"
  | TDouble -> Format.pp_print_string fmt "double"
  | TVoid -> Format.pp_print_string fmt "void"
  | TPtr t -> Format.fprintf fmt "%a*" pp_ty t
  | TStruct s -> Format.fprintf fmt "struct %s" s

let ty_to_string t = Format.asprintf "%a" pp_ty t
