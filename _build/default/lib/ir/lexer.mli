(** Hand-written lexer for MiniC. *)

type token =
  | INT of int64
  | FLOAT of float
  | IDENT of string
  | KW of string
      (** one of: int double void struct if else while for return break
          continue malloc free sizeof null *)
  | PUNCT of string
      (** operators and delimiters: [( ) { } \[ \] ; , * / % + - = ==
          != < <= > >= && || ! -> .] *)
  | EOF

type lexed = { tok : token; pos : Ast.pos }

val tokenize : string -> lexed list
(** Lex a full source string.
    @raise Ast.Syntax_error on illegal characters or malformed
    literals/comments. *)

val token_to_string : token -> string
