(** IR values, instructions, and terminators.

    The instruction set is a small RISC-flavoured register IR:
    unbounded virtual registers per function, loads/stores against a
    byte-addressed heap, address arithmetic via [Gep], and calls.  It is
    *not* SSA — loop counters are re-assigned in place — which matches
    what the analyses in {!Cards_analysis} are written against.

    Far-memory constructs ([Guard], [DsInit], [DsAlloc], [LoopCheck])
    are never produced by the MiniC frontend; they are injected by the
    CaRDS transformation passes, mirroring how the paper's compiler
    rewrites LLVM IR. *)

type reg = int
(** Virtual register index, local to a function. *)

type value =
  | Reg of reg
  | Imm of int64        (** integer immediate *)
  | Fimm of float       (** float immediate *)
  | Null                (** null pointer *)
  | GlobalAddr of string(** address of a global variable *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Fadd | Fsub | Fmul | Fdiv

type cmpop = Eq | Ne | Lt | Le | Gt | Ge
(** Comparison; operates on integers or floats depending on operands. *)

type guard_kind = Gread | Gwrite

type instr =
  | Bin of reg * binop * value * value
      (** [r <- a op b] *)
  | Cmp of reg * cmpop * value * value
      (** [r <- a cmp b], result 0/1 *)
  | Mov of reg * value
  | I2f of reg * value          (** int-to-float conversion *)
  | F2i of reg * value          (** float-to-int (truncating) *)
  | Load of reg * Types.t * value
      (** [r <- *(ty* )addr] *)
  | Store of Types.t * value * value
      (** [*(ty* )addr <- v]; operands are (ty, addr, v) *)
  | Gep of reg * value * value * int
      (** [r <- base + index * scale] — address arithmetic *)
  | Malloc of reg * value
      (** heap allocation of [size] bytes (pre-transformation) *)
  | Free of value
  | Call of reg option * string * value list
      (** direct call; also used for intrinsics such as [print_int] *)
  | Guard of guard_kind * value
      (** CaRDS/TrackFM guard: localize the object behind [addr]
          before the following access (injected by {!Cards_transform.Guards}) *)
  | DsInit of reg * int
      (** [r <- cards_ds_init static_descriptor_id] (pool allocation) *)
  | DsAlloc of reg * value * value
      (** [r <- cards_dsalloc (size, handle)] (pool allocation) *)
  | LoopCheck of reg * value list
      (** [r <- 1] iff all data structures behind the handles are
          currently localized (code versioning, §4.1) *)
  | Prefetch of value
      (** non-binding prefetch hint for the object behind [addr] *)

type term =
  | Br of int                     (** unconditional branch to block id *)
  | Cbr of value * int * int      (** branch if non-zero / zero *)
  | Ret of value option
  | Unreachable

val defined_reg : instr -> reg option
(** The register written by the instruction, if any. *)

val used_values : instr -> value list
(** Operand values read by the instruction. *)

val term_used_values : term -> value list

val term_successors : term -> int list

val map_instr_values : (value -> value) -> instr -> instr
(** Rewrite every operand (not the defined register). *)

val map_term_values : (value -> value) -> term -> term

val is_float_binop : binop -> bool

val pp_value : Format.formatter -> value -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_term : Format.formatter -> term -> unit
