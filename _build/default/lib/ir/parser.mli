(** Recursive-descent parser for MiniC.

    Grammar sketch (C-like, standard precedence):
    {v
    program   := (struct | global | func)*
    struct    := "struct" IDENT "{" (type IDENT ";")+ "}" ";"
    type      := ("int" | "double" | "void" | "struct" IDENT) "*"*
    global    := type IDENT ("=" expr)? ";"
    func      := type IDENT "(" (type IDENT),* ")" "{" stmt* "}"
    stmt      := decl | assign | if | while | for | return | break
               | continue | block | "free" "(" expr ")" ";" | expr ";"
    expr      := "||" < "&&" < (in)equality < relational < additive
               < multiplicative < unary < postfix ("[..]", "->f", call)
    v} *)

val parse : string -> Ast.program
(** Parse a full MiniC source string.
    @raise Ast.Syntax_error with position info on malformed input. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression (testing convenience). *)
