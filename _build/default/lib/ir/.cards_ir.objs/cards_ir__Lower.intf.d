lib/ir/lower.mli: Ast Irmod
