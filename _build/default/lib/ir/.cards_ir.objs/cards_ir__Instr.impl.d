lib/ir/instr.ml: Format List Types
