lib/ir/minic.mli: Irmod
