lib/ir/lower.ml: Array Ast Builder Hashtbl Instr Int64 Irmod List Option Printf Types
