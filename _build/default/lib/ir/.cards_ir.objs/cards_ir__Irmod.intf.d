lib/ir/irmod.mli: Func Instr Types
