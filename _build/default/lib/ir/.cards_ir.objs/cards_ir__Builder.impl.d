lib/ir/builder.ml: Array Func Instr Int64 List Printf Types
