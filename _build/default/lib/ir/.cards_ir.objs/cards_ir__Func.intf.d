lib/ir/func.mli: Instr Types
