lib/ir/printer.mli: Format Func Irmod
