lib/ir/printer.ml: Array Format Func Instr Irmod List Types
