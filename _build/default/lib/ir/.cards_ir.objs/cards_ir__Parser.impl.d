lib/ir/parser.ml: Array Ast Lexer List Printf
