lib/ir/ast.ml: Format
