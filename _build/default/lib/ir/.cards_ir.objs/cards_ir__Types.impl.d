lib/ir/types.ml: Array Format
