lib/ir/irmod.ml: Func Instr List Option Types
