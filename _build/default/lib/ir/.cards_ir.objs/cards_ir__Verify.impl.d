lib/ir/verify.ml: Array Func Instr Irmod List Printf String Types
