lib/ir/minic.ml: Ast Lower Parser Printf Verify
