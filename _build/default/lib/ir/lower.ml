open Ast

type fsig = { sig_ret : Ast.ty; sig_params : Ast.ty list }

type env = {
  structs : (string, (Ast.ty * string) list) Hashtbl.t;
  layouts : (string, Types.t) Hashtbl.t;
  fsigs : (string, fsig) Hashtbl.t;
  globals : (string, Ast.ty) Hashtbl.t;
}

(* Pointer fields are flattened to [i64*]: this breaks recursive-type
   cycles and deliberately erases pointee identity, as LLVM IR does. *)
let lower_field _env pos = function
  | TInt -> Types.I64
  | TDouble -> Types.F64
  | TPtr _ -> Types.Ptr Types.I64
  | TStruct s -> error pos (Printf.sprintf "struct %s field must be scalar or pointer" s)
  | TVoid -> error pos "void struct field"

let layout env pos name =
  match Hashtbl.find_opt env.layouts name with
  | Some l -> l
  | None -> begin
    match Hashtbl.find_opt env.structs name with
    | None -> error pos (Printf.sprintf "unknown struct %s" name)
    | Some fields ->
      let l =
        Types.Struct
          (name, Array.of_list (List.map (fun (ty, _) -> lower_field env pos ty) fields))
      in
      Hashtbl.replace env.layouts name l;
      l
  end

let rec lower_ty env pos = function
  | TInt -> Types.I64
  | TDouble -> Types.F64
  | TVoid -> Types.Void
  | TPtr (TStruct s) -> Types.Ptr (layout env pos s)
  | TPtr t -> Types.Ptr (lower_ty env pos t)
  | TStruct s -> error pos (Printf.sprintf "struct %s can only be used behind a pointer" s)

let sizeof_ast env pos = function
  | TInt | TDouble | TPtr _ -> 8
  | TStruct s -> Types.size_of (layout env pos s)
  | TVoid -> error pos "sizeof(void)"

let is_numeric = function TInt | TDouble -> true | TPtr _ | TStruct _ | TVoid -> false
let is_ptr = function TPtr _ -> true | TInt | TDouble | TStruct _ | TVoid -> false

let field_info env pos sname fname =
  match Hashtbl.find_opt env.structs sname with
  | None -> error pos (Printf.sprintf "unknown struct %s" sname)
  | Some fields ->
    let rec find i = function
      | [] -> error pos (Printf.sprintf "struct %s has no field %s" sname fname)
      | (ty, n) :: _ when n = fname -> (i, ty)
      | _ :: rest -> find (i + 1) rest
    in
    let idx, fty = find 0 fields in
    let l = layout env pos sname in
    (Types.field_offset l idx, fty)

(* --- per-function lowering state ------------------------------------- *)

type fstate = {
  env : env;
  b : Builder.t;
  mutable scopes : (string, Instr.reg * Ast.ty) Hashtbl.t list;
  mutable loops : (int * int) list; (* (continue target, break target) *)
  fret_ty : Ast.ty;
}

let push_scope fs = fs.scopes <- Hashtbl.create 8 :: fs.scopes
let pop_scope fs =
  match fs.scopes with
  | _ :: rest -> fs.scopes <- rest
  | [] -> assert false

let lookup_var fs name =
  let rec go = function
    | [] -> None
    | scope :: rest -> begin
      match Hashtbl.find_opt scope name with
      | Some x -> Some x
      | None -> go rest
    end
  in
  go fs.scopes

let declare_var fs pos name ty =
  match fs.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope name then
      error pos (Printf.sprintf "redeclaration of %s" name);
    let r = Builder.fresh fs.b (lower_ty fs.env pos ty) in
    Hashtbl.replace scope name (r, ty);
    r
  | [] -> assert false

(* Numeric conversion of [v : from] to [target]. *)
let convert fs pos v from target =
  match from, target with
  | TInt, TDouble -> Builder.i2f fs.b v
  | TDouble, TInt -> Builder.f2i fs.b v
  | TInt, TInt | TDouble, TDouble -> v
  | TPtr _, TPtr _ -> v   (* pointer assignment is untyped, like LLVM *)
  | (TInt | TDouble | TPtr _ | TStruct _ | TVoid), _ ->
    if from = target then v
    else
      error pos
        (Printf.sprintf "cannot convert %s to %s" (ty_to_string from)
           (ty_to_string target))

let rec lower_expr fs ?(hint : Ast.ty option) (e : expr) : Instr.value * Ast.ty =
  let pos = e.epos in
  match e.e with
  | Eint i -> (Instr.Imm i, TInt)
  | Efloat f -> (Instr.Fimm f, TDouble)
  | Enull ->
    let ty = match hint with Some (TPtr _ as t) -> t | _ -> TPtr TInt in
    (Instr.Null, ty)
  | Esizeof ty -> (Instr.Imm (Int64.of_int (sizeof_ast fs.env pos ty)), TInt)
  | Evar name -> begin
    match lookup_var fs name with
    | Some (r, ty) -> (Instr.Reg r, ty)
    | None -> begin
      match Hashtbl.find_opt fs.env.globals name with
      | Some gty ->
        let v = Builder.load fs.b (lower_ty fs.env pos gty) (Instr.GlobalAddr name) in
        (v, gty)
      | None -> error pos (Printf.sprintf "unknown variable %s" name)
    end
  end
  | Emalloc size_e ->
    let size, sty = lower_expr fs size_e in
    let size = convert fs pos size sty TInt in
    let ty = match hint with Some (TPtr _ as t) -> t | _ -> TPtr TInt in
    let v = Builder.malloc fs.b ~ty:(lower_ty fs.env pos ty) size in
    (v, ty)
  | Eun (Uneg, e1) ->
    let v, ty = lower_expr fs e1 in
    if not (is_numeric ty) then error pos "unary - on non-numeric operand";
    if ty = TDouble then (Builder.bin fs.b Instr.Fsub (Instr.Fimm 0.0) v, TDouble)
    else (Builder.bin fs.b Instr.Sub (Instr.Imm 0L) v, TInt)
  | Eun (Unot, e1) ->
    let v, ty = lower_expr fs e1 in
    let zero = if ty = TDouble then Instr.Fimm 0.0 else Instr.Imm 0L in
    (Builder.cmp fs.b Instr.Eq v zero, TInt)
  | Ebin ((Band | Bor) as op, l, r) -> lower_short_circuit fs pos op l r
  | Ebin (op, l, r) -> lower_binop fs pos op l r
  | Ecall (name, args) -> lower_call fs pos ~hint name args
  | Eindex (base_e, idx_e) ->
    let addr, elem_ty = lower_index_addr fs pos base_e idx_e in
    (Builder.load fs.b (lower_ty fs.env pos elem_ty) addr, elem_ty)
  | Earrow (p_e, fname) ->
    let addr, fty = lower_arrow_addr fs pos p_e fname in
    (Builder.load fs.b (lower_ty fs.env pos fty) addr, fty)
  | Ederef p_e ->
    let addr, pointee_ty = lower_deref_addr fs pos p_e in
    (Builder.load fs.b (lower_ty fs.env pos pointee_ty) addr, pointee_ty)

and lower_index_addr fs pos base_e idx_e =
  let base, bty = lower_expr fs base_e in
  let idx, ity = lower_expr fs idx_e in
  let idx = convert fs pos idx ity TInt in
  match bty with
  | TPtr elem_ty ->
    let scale = sizeof_ast fs.env pos elem_ty in
    let addr =
      Builder.gep fs.b ~ty:(lower_ty fs.env pos bty) base idx scale
    in
    (addr, elem_ty)
  | TInt | TDouble | TStruct _ | TVoid -> error pos "indexing a non-pointer"

and lower_arrow_addr fs pos p_e fname =
  let p, pty = lower_expr fs p_e in
  match pty with
  | TPtr (TStruct sname) ->
    let offset, fty = field_info fs.env pos sname fname in
    let addr =
      Builder.gep fs.b ~ty:(Types.Ptr (lower_field fs.env pos fty)) p
        (Instr.Imm (Int64.of_int offset)) 1
    in
    (addr, fty)
  | _ -> error pos (Printf.sprintf "-> on %s (need struct pointer)" (ty_to_string pty))

and lower_deref_addr fs pos p_e =
  let p, pty = lower_expr fs p_e in
  match pty with
  | TPtr (TStruct s) -> error pos (Printf.sprintf "cannot load struct %s by value" s)
  | TPtr t -> (p, t)
  | TInt | TDouble | TStruct _ | TVoid -> error pos "dereferencing a non-pointer"

and lower_short_circuit fs pos op l r =
  let result = Builder.fresh fs.b Types.I64 in
  let v_l, lty = lower_expr fs l in
  let zero_l = if lty = TDouble then Instr.Fimm 0.0 else Instr.Imm 0L in
  let l_true = Builder.cmp fs.b Instr.Ne v_l zero_l in
  let rhs_block = Builder.new_block fs.b in
  let short_block = Builder.new_block fs.b in
  let join = Builder.new_block fs.b in
  (match op with
   | Band -> Builder.cbr fs.b l_true rhs_block short_block
   | Bor -> Builder.cbr fs.b l_true short_block rhs_block
   | _ -> assert false);
  Builder.set_block fs.b rhs_block;
  let v_r, rty = lower_expr fs r in
  let zero_r = if rty = TDouble then Instr.Fimm 0.0 else Instr.Imm 0L in
  let r_true = Builder.cmp fs.b Instr.Ne v_r zero_r in
  Builder.emit fs.b (Instr.Mov (result, r_true));
  Builder.br fs.b join;
  Builder.set_block fs.b short_block;
  let short_val = match op with Band -> 0L | _ -> 1L in
  Builder.emit fs.b (Instr.Mov (result, Instr.Imm short_val));
  Builder.br fs.b join;
  Builder.set_block fs.b join;
  ignore pos;
  (Instr.Reg result, TInt)

and lower_binop fs pos op l r =
  let v_l, lty = lower_expr fs l in
  let v_r, rty = lower_expr fs r in
  let arith iop fop =
    match lty, rty with
    | TInt, TInt -> (Builder.bin fs.b iop v_l v_r, TInt)
    | (TDouble | TInt), (TDouble | TInt) ->
      let v_l = convert fs pos v_l lty TDouble in
      let v_r = convert fs pos v_r rty TDouble in
      (Builder.bin fs.b fop v_l v_r, TDouble)
    | TPtr elem_ty, TInt when op = Badd || op = Bsub ->
      let scale = sizeof_ast fs.env pos elem_ty in
      let idx =
        if op = Bsub then Builder.bin fs.b Instr.Sub (Instr.Imm 0L) v_r else v_r
      in
      (Builder.gep fs.b ~ty:(lower_ty fs.env pos lty) v_l idx scale, lty)
    | TPtr _, TPtr _ when op = Bsub ->
      (* pointer difference in bytes *)
      (Builder.bin fs.b Instr.Sub v_l v_r, TInt)
    | _ ->
      error pos
        (Printf.sprintf "invalid operands %s, %s" (ty_to_string lty) (ty_to_string rty))
  in
  let compare cop =
    match lty, rty with
    | (TInt | TDouble), (TInt | TDouble) ->
      if lty = TDouble || rty = TDouble then begin
        let v_l = convert fs pos v_l lty TDouble in
        let v_r = convert fs pos v_r rty TDouble in
        (Builder.cmp fs.b cop v_l v_r, TInt)
      end
      else (Builder.cmp fs.b cop v_l v_r, TInt)
    | TPtr _, TPtr _ -> (Builder.cmp fs.b cop v_l v_r, TInt)
    | _ ->
      error pos
        (Printf.sprintf "cannot compare %s with %s" (ty_to_string lty)
           (ty_to_string rty))
  in
  match op with
  | Badd -> arith Instr.Add Instr.Fadd
  | Bsub -> arith Instr.Sub Instr.Fsub
  | Bmul -> arith Instr.Mul Instr.Fmul
  | Bdiv -> arith Instr.Div Instr.Fdiv
  | Brem -> begin
    match lty, rty with
    | TInt, TInt -> (Builder.bin fs.b Instr.Rem v_l v_r, TInt)
    | _ -> error pos "% requires int operands"
  end
  | Beq -> compare Instr.Eq
  | Bne -> compare Instr.Ne
  | Blt -> compare Instr.Lt
  | Ble -> compare Instr.Le
  | Bgt -> compare Instr.Gt
  | Bge -> compare Instr.Ge
  | Band | Bor -> assert false

and lower_call fs pos ?hint name args =
  ignore hint;
  match name, args with
  | "print_int", [ a ] ->
    let v, ty = lower_expr fs a in
    let v = convert fs pos v ty TInt in
    Builder.call_void fs.b "print_int" [ v ];
    (Instr.Imm 0L, TInt)
  | "print_float", [ a ] ->
    let v, ty = lower_expr fs a in
    let v = convert fs pos v ty TDouble in
    Builder.call_void fs.b "print_float" [ v ];
    (Instr.Imm 0L, TInt)
  | "clock", [] -> (Builder.call fs.b ~ty:Types.I64 "clock" [], TInt)
  | "abort", [] ->
    Builder.call_void fs.b "abort" [];
    (Instr.Imm 0L, TInt)
  | _ -> begin
    match Hashtbl.find_opt fs.env.fsigs name with
    | None -> error pos (Printf.sprintf "unknown function %s" name)
    | Some fsig ->
      if List.length args <> List.length fsig.sig_params then
        error pos
          (Printf.sprintf "%s expects %d arguments, got %d" name
             (List.length fsig.sig_params) (List.length args));
      let lowered =
        List.map2
          (fun arg pty ->
            let v, aty = lower_expr fs ~hint:pty arg in
            convert fs pos v aty pty)
          args fsig.sig_params
      in
      match fsig.sig_ret with
      | TVoid ->
        Builder.call_void fs.b name lowered;
        (Instr.Imm 0L, TInt)
      | ret ->
        let v = Builder.call fs.b ~ty:(lower_ty fs.env pos ret) name lowered in
        (v, ret)
  end

(* --- statements ------------------------------------------------------ *)

let rec lower_stmt fs (stmt : stmt) =
  let pos = stmt.spos in
  match stmt.s with
  | Sblock body ->
    push_scope fs;
    List.iter (lower_stmt fs) body;
    pop_scope fs
  | Sdecl (ty, name, init) ->
    let init_v =
      Option.map
        (fun e ->
          let v, ety = lower_expr fs ~hint:ty e in
          convert fs pos v ety ty)
        init
    in
    let r = declare_var fs pos name ty in
    let v =
      match init_v with
      | Some v -> v
      | None -> begin
        match ty with
        | TDouble -> Instr.Fimm 0.0
        | TPtr _ -> Instr.Null
        | _ -> Instr.Imm 0L
      end
    in
    Builder.emit fs.b (Instr.Mov (r, v))
  | Sassign (lv, rhs) -> lower_assign fs pos lv rhs
  | Sexpr e -> ignore (lower_expr fs e)
  | Sfree e ->
    let v, ty = lower_expr fs e in
    if not (is_ptr ty) then error pos "free of non-pointer";
    Builder.emit fs.b (Instr.Free v)
  | Sreturn None -> begin
    match fs.fret_ty with
    | TVoid -> Builder.ret fs.b None
    | _ -> error pos "missing return value"
  end
  | Sreturn (Some e) ->
    let v, ty = lower_expr fs ~hint:fs.fret_ty e in
    let v = convert fs pos v ty fs.fret_ty in
    Builder.ret fs.b (Some v)
  | Sif (c, then_s, else_s) ->
    let v, cty = lower_expr fs c in
    let zero = if cty = TDouble then Instr.Fimm 0.0 else Instr.Imm 0L in
    let cond = Builder.cmp fs.b Instr.Ne v zero in
    let bt = Builder.new_block fs.b in
    let bf = Builder.new_block fs.b in
    let join = Builder.new_block fs.b in
    Builder.cbr fs.b cond bt bf;
    Builder.set_block fs.b bt;
    push_scope fs;
    lower_stmt fs then_s;
    pop_scope fs;
    if not (Builder.sealed fs.b (Builder.current_block fs.b)) then Builder.br fs.b join;
    Builder.set_block fs.b bf;
    (match else_s with
     | Some s ->
       push_scope fs;
       lower_stmt fs s;
       pop_scope fs
     | None -> ());
    if not (Builder.sealed fs.b (Builder.current_block fs.b)) then Builder.br fs.b join;
    Builder.set_block fs.b join
  | Swhile (c, body) ->
    let header = Builder.new_block fs.b in
    let bodyb = Builder.new_block fs.b in
    let exitb = Builder.new_block fs.b in
    Builder.br fs.b header;
    Builder.set_block fs.b header;
    let v, cty = lower_expr fs c in
    let zero = if cty = TDouble then Instr.Fimm 0.0 else Instr.Imm 0L in
    let cond = Builder.cmp fs.b Instr.Ne v zero in
    Builder.cbr fs.b cond bodyb exitb;
    Builder.set_block fs.b bodyb;
    fs.loops <- (header, exitb) :: fs.loops;
    push_scope fs;
    lower_stmt fs body;
    pop_scope fs;
    fs.loops <- List.tl fs.loops;
    if not (Builder.sealed fs.b (Builder.current_block fs.b)) then
      Builder.br fs.b header;
    Builder.set_block fs.b exitb
  | Sfor (init, cond, step, body) ->
    push_scope fs;
    Option.iter (lower_stmt fs) init;
    let header = Builder.new_block fs.b in
    let bodyb = Builder.new_block fs.b in
    let stepb = Builder.new_block fs.b in
    let exitb = Builder.new_block fs.b in
    Builder.br fs.b header;
    Builder.set_block fs.b header;
    (match cond with
     | Some c ->
       let v, cty = lower_expr fs c in
       let zero = if cty = TDouble then Instr.Fimm 0.0 else Instr.Imm 0L in
       let cv = Builder.cmp fs.b Instr.Ne v zero in
       Builder.cbr fs.b cv bodyb exitb
     | None -> Builder.br fs.b bodyb);
    Builder.set_block fs.b bodyb;
    fs.loops <- (stepb, exitb) :: fs.loops;
    push_scope fs;
    lower_stmt fs body;
    pop_scope fs;
    fs.loops <- List.tl fs.loops;
    if not (Builder.sealed fs.b (Builder.current_block fs.b)) then
      Builder.br fs.b stepb;
    Builder.set_block fs.b stepb;
    Option.iter (lower_stmt fs) step;
    Builder.br fs.b header;
    Builder.set_block fs.b exitb;
    pop_scope fs
  | Sbreak -> begin
    match fs.loops with
    | (_, exitb) :: _ -> Builder.br fs.b exitb
    | [] -> error pos "break outside loop"
  end
  | Scontinue -> begin
    match fs.loops with
    | (contb, _) :: _ -> Builder.br fs.b contb
    | [] -> error pos "continue outside loop"
  end

and lower_assign fs pos lv rhs =
  match lv with
  | Lvar name -> begin
    match lookup_var fs name with
    | Some (r, ty) ->
      let v, ety = lower_expr fs ~hint:ty rhs in
      Builder.emit fs.b (Instr.Mov (r, convert fs pos v ety ty))
    | None -> begin
      match Hashtbl.find_opt fs.env.globals name with
      | Some gty ->
        let v, ety = lower_expr fs ~hint:gty rhs in
        let v = convert fs pos v ety gty in
        Builder.store fs.b (lower_ty fs.env pos gty) ~addr:(Instr.GlobalAddr name) v
      | None -> error pos (Printf.sprintf "unknown variable %s" name)
    end
  end
  | Lindex (base_e, idx_e) ->
    let addr, elem_ty = lower_index_addr fs pos base_e idx_e in
    let v, ety = lower_expr fs ~hint:elem_ty rhs in
    let v = convert fs pos v ety elem_ty in
    Builder.store fs.b (lower_ty fs.env pos elem_ty) ~addr v
  | Larrow (p_e, fname) ->
    let addr, fty = lower_arrow_addr fs pos p_e fname in
    let v, ety = lower_expr fs ~hint:fty rhs in
    let v = convert fs pos v ety fty in
    Builder.store fs.b (lower_field fs.env pos fty) ~addr v
  | Lderef p_e ->
    let addr, pointee_ty = lower_deref_addr fs pos p_e in
    let v, ety = lower_expr fs ~hint:pointee_ty rhs in
    let v = convert fs pos v ety pointee_ty in
    Builder.store fs.b (lower_ty fs.env pos pointee_ty) ~addr v

(* --- whole program ---------------------------------------------------- *)

let lower_func env (fd : func_decl) =
  let pos = { line = 0; col = 0 } in
  let params =
    List.map (fun (ty, name) -> (name, lower_ty env pos ty)) fd.fparams
  in
  let b = Builder.create ~name:fd.fname ~params ~ret:(lower_ty env pos fd.fret) in
  let fs = { env; b; scopes = []; loops = []; fret_ty = fd.fret } in
  push_scope fs;
  (* Bind parameters into the top scope (their registers are 0..). *)
  List.iteri
    (fun i (ty, name) ->
      match fs.scopes with
      | scope :: _ -> Hashtbl.replace scope name (i, ty)
      | [] -> assert false)
    fd.fparams;
  List.iter (lower_stmt fs) fd.fbody;
  if not (Builder.sealed fs.b (Builder.current_block fs.b)) then begin
    match fd.fret with
    | TVoid -> Builder.ret fs.b None
    | TDouble -> Builder.ret fs.b (Some (Instr.Fimm 0.0))
    | TPtr _ -> Builder.ret fs.b (Some Instr.Null)
    | _ -> Builder.ret fs.b (Some (Instr.Imm 0L))
  end;
  Builder.finish fs.b

let lower (prog : program) : Irmod.t =
  let env =
    { structs = Hashtbl.create 8; layouts = Hashtbl.create 8;
      fsigs = Hashtbl.create 8; globals = Hashtbl.create 8 }
  in
  let pos = { line = 0; col = 0 } in
  (* First pass: collect declarations so functions can be mutually
     recursive and mention later structs. *)
  List.iter
    (function
      | Dstruct sd -> Hashtbl.replace env.structs sd.sname sd.sfields
      | Dglobal gd -> Hashtbl.replace env.globals gd.gname gd.gty
      | Dfunc fd ->
        Hashtbl.replace env.fsigs fd.fname
          { sig_ret = fd.fret; sig_params = List.map fst fd.fparams })
    prog;
  let globals =
    List.filter_map
      (function
        | Dglobal gd ->
          let ginit =
            match gd.ginit with
            | Some { e = Eint i; _ } -> Instr.Imm i
            | Some { e = Efloat f; _ } -> Instr.Fimm f
            | Some { e = Enull; _ } | None -> begin
              match gd.gty with
              | TDouble -> Instr.Fimm 0.0
              | TPtr _ -> Instr.Null
              | _ -> Instr.Imm 0L
            end
            | Some e -> error e.epos "global initializers must be literals"
          in
          Some { Irmod.gname = gd.gname; gty = lower_ty env pos gd.gty; ginit }
        | Dstruct _ | Dfunc _ -> None)
      prog
  in
  let funcs =
    List.filter_map
      (function Dfunc fd -> Some (lower_func env fd) | Dstruct _ | Dglobal _ -> None)
      prog
  in
  { Irmod.globals; funcs }
