let pp_func fmt (f : Func.t) =
  Format.fprintf fmt "define %a @%s(" Types.pp f.ret f.name;
  List.iteri
    (fun i (r, ty) ->
      if i > 0 then Format.pp_print_string fmt ", ";
      Format.fprintf fmt "%a %%r%d" Types.pp ty r)
    f.params;
  Format.fprintf fmt ") {@.";
  Array.iter
    (fun (b : Func.block) ->
      Format.fprintf fmt "L%d:@." b.bid;
      Array.iter (fun ins -> Format.fprintf fmt "  %a@." Instr.pp_instr ins) b.instrs;
      Format.fprintf fmt "  %a@." Instr.pp_term b.term)
    f.blocks;
  Format.fprintf fmt "}@."

let pp_module fmt (m : Irmod.t) =
  List.iter
    (fun (g : Irmod.global) ->
      Format.fprintf fmt "global %a @%s = %a@." Types.pp g.gty g.gname
        Instr.pp_value g.ginit)
    m.globals;
  List.iter (fun f -> Format.fprintf fmt "@.%a" pp_func f) m.funcs

let func_to_string f = Format.asprintf "%a" pp_func f
let module_to_string m = Format.asprintf "%a" pp_module m
