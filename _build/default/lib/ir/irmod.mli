(** A whole-program IR module: globals plus functions.

    Globals are scalar variables living in an unmanaged segment (CaRDS
    only manages heap data structures — "Notably, only heap-allocated
    data structures are identified", §4.1 Fig. 2). *)

type global = { gname : string; gty : Types.t; ginit : Instr.value }

type t = {
  globals : global list;
  funcs : Func.t list;
}

val empty : t

val find_func : t -> string -> Func.t
(** @raise Not_found if absent. *)

val find_func_opt : t -> string -> Func.t option

val has_func : t -> string -> bool

val add_func : t -> Func.t -> t
(** Add or replace (by name). *)

val replace_funcs : t -> Func.t list -> t
(** Replace the function list wholesale (used by transforms). *)

val main : t -> Func.t
(** The entry function. @raise Not_found if there is no [main]. *)

val intrinsics : string list
(** Names treated as runtime intrinsics rather than IR functions:
    [print_int], [print_float], [abort], [clock]. *)

val is_intrinsic : string -> bool
