(** Imperative construction of IR functions.

    Used by the MiniC lowering pass and by tests/workloads that build IR
    directly.  A builder owns one function under construction: create
    blocks, position the cursor, emit instructions, seal blocks with
    terminators, then [finish]. *)

type t

val create : name:string -> params:(string * Types.t) list -> ret:Types.t -> t
(** Starts a function.  Parameters get registers [0..]; an entry block
    (id 0) is created and selected. *)

val name : t -> string

val param : t -> string -> Instr.value
(** Value of a named parameter. @raise Not_found if unknown. *)

val fresh : t -> Types.t -> Instr.reg
(** Allocate a new virtual register of the given type. *)

val reg_ty : t -> Instr.reg -> Types.t

val value_ty : t -> Instr.value -> Types.t
(** Static type of a value ([Imm] is [I64], [Null] is [Ptr I64], …). *)

val new_block : t -> int
(** Create an (unterminated) block and return its id; cursor unmoved. *)

val set_block : t -> int -> unit
(** Move the emission cursor to the end of the given block. *)

val current_block : t -> int

val emit : t -> Instr.instr -> unit
(** Append a raw instruction at the cursor.
    @raise Invalid_argument if the current block is already sealed. *)

(** {2 Convenience emitters} — allocate a result register, emit, and
    return the result as a value. *)

val bin : t -> Instr.binop -> Instr.value -> Instr.value -> Instr.value
val cmp : t -> Instr.cmpop -> Instr.value -> Instr.value -> Instr.value
val mov : t -> Instr.value -> Instr.value
val i2f : t -> Instr.value -> Instr.value
val f2i : t -> Instr.value -> Instr.value
val load : t -> Types.t -> Instr.value -> Instr.value
val store : t -> Types.t -> addr:Instr.value -> Instr.value -> unit
val gep : t -> ty:Types.t -> Instr.value -> Instr.value -> int -> Instr.value
(** [gep b ~ty base idx scale] — [ty] is the type of the *result*. *)

val malloc : t -> ty:Types.t -> Instr.value -> Instr.value
(** [malloc b ~ty size] — [ty] is the pointer type of the result. *)

val call : t -> ty:Types.t -> string -> Instr.value list -> Instr.value
(** Call with a result (of type [ty]). *)

val call_void : t -> string -> Instr.value list -> unit

(** {2 Terminators} — seal the current block. *)

val br : t -> int -> unit
val cbr : t -> Instr.value -> int -> int -> unit
val ret : t -> Instr.value option -> unit

val sealed : t -> int -> bool
(** Has the given block been terminated? *)

val finish : t -> Func.t
(** Freeze into an immutable {!Func.t}.
    @raise Invalid_argument if any block lacks a terminator. *)

(** {2 Structured control-flow helpers} *)

val build_for :
  t ->
  init:Instr.value ->
  limit:Instr.value ->
  step:int ->
  (t -> Instr.value -> unit) ->
  unit
(** [build_for b ~init ~limit ~step body] emits
    [for (i = init; i < limit; i += step) body(i)] around the cursor,
    leaving the cursor in the exit block. *)

val build_while : t -> cond:(t -> Instr.value) -> (t -> unit) -> unit
(** [build_while b ~cond body]: [while (cond()) body()]. *)

val build_if :
  t -> Instr.value -> (t -> unit) -> (t -> unit) -> unit
(** [build_if b c then_ else_]. *)
