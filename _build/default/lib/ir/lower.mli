(** Lowering MiniC to the IR, with type checking.

    This is where source-level data-structure information is *lost*, by
    design: struct names survive only as debug strings and pointer
    fields are flattened to untyped pointers, so downstream analyses see
    exactly what the paper's LLVM middle-end sees (§3: "The LLVM type
    system does not recognize user-defined types").

    Typing rules are C-like: [int]/[double] convert implicitly,
    pointer+int scales by the pointee size, [malloc] adopts the type of
    its destination, structs exist only behind pointers. *)

val lower : Ast.program -> Irmod.t
(** @raise Ast.Syntax_error on type errors (with source position). *)
