open Ast

type st = { toks : Lexer.lexed array; mutable k : int }

let cur st = st.toks.(st.k)
let cur_tok st = (cur st).Lexer.tok
let cur_pos st = (cur st).Lexer.pos
let bump st = if st.k < Array.length st.toks - 1 then st.k <- st.k + 1

let fail st msg =
  error (cur_pos st)
    (Printf.sprintf "%s (found %s)" msg (Lexer.token_to_string (cur_tok st)))

let eat_punct st p =
  match cur_tok st with
  | Lexer.PUNCT q when q = p -> bump st
  | _ -> fail st (Printf.sprintf "expected %S" p)

let eat_kw st kw =
  match cur_tok st with
  | Lexer.KW q when q = kw -> bump st
  | _ -> fail st (Printf.sprintf "expected keyword %S" kw)

let peek_punct st p =
  match cur_tok st with Lexer.PUNCT q -> q = p | _ -> false

let peek_kw st kw = match cur_tok st with Lexer.KW q -> q = kw | _ -> false

let accept_punct st p =
  if peek_punct st p then begin bump st; true end else false

let ident st =
  match cur_tok st with
  | Lexer.IDENT s -> bump st; s
  | _ -> fail st "expected identifier"

(* --- types ------------------------------------------------------- *)

let starts_type st =
  peek_kw st "int" || peek_kw st "double" || peek_kw st "void" || peek_kw st "struct"

let parse_base_ty st =
  if peek_kw st "int" then begin bump st; TInt end
  else if peek_kw st "double" then begin bump st; TDouble end
  else if peek_kw st "void" then begin bump st; TVoid end
  else if peek_kw st "struct" then begin
    bump st;
    let name = ident st in
    TStruct name
  end
  else fail st "expected type"

let parse_ty st =
  let base = parse_base_ty st in
  let rec stars t = if accept_punct st "*" then stars (TPtr t) else t in
  stars base

(* --- expressions -------------------------------------------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek_punct st "||" do
    let p = cur_pos st in
    bump st;
    let rhs = parse_and st in
    lhs := { e = Ebin (Bor, !lhs, rhs); epos = p }
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_equality st) in
  while peek_punct st "&&" do
    let p = cur_pos st in
    bump st;
    let rhs = parse_equality st in
    lhs := { e = Ebin (Band, !lhs, rhs); epos = p }
  done;
  !lhs

and parse_equality st =
  let lhs = ref (parse_relational st) in
  let rec loop () =
    let op =
      if peek_punct st "==" then Some Beq
      else if peek_punct st "!=" then Some Bne
      else None
    in
    match op with
    | Some op ->
      let p = cur_pos st in
      bump st;
      let rhs = parse_relational st in
      lhs := { e = Ebin (op, !lhs, rhs); epos = p };
      loop ()
    | None -> ()
  in
  loop ();
  !lhs

and parse_relational st =
  let lhs = ref (parse_additive st) in
  let rec loop () =
    let op =
      if peek_punct st "<=" then Some Ble
      else if peek_punct st ">=" then Some Bge
      else if peek_punct st "<" then Some Blt
      else if peek_punct st ">" then Some Bgt
      else None
    in
    match op with
    | Some op ->
      let p = cur_pos st in
      bump st;
      let rhs = parse_additive st in
      lhs := { e = Ebin (op, !lhs, rhs); epos = p };
      loop ()
    | None -> ()
  in
  loop ();
  !lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    let op =
      if peek_punct st "+" then Some Badd
      else if peek_punct st "-" then Some Bsub
      else None
    in
    match op with
    | Some op ->
      let p = cur_pos st in
      bump st;
      let rhs = parse_multiplicative st in
      lhs := { e = Ebin (op, !lhs, rhs); epos = p };
      loop ()
    | None -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec loop () =
    let op =
      if peek_punct st "*" then Some Bmul
      else if peek_punct st "/" then Some Bdiv
      else if peek_punct st "%" then Some Brem
      else None
    in
    match op with
    | Some op ->
      let p = cur_pos st in
      bump st;
      let rhs = parse_unary st in
      lhs := { e = Ebin (op, !lhs, rhs); epos = p };
      loop ()
    | None -> ()
  in
  loop ();
  !lhs

and parse_unary st =
  let p = cur_pos st in
  if accept_punct st "-" then
    let e = parse_unary st in
    { e = Eun (Uneg, e); epos = p }
  else if accept_punct st "!" then
    let e = parse_unary st in
    { e = Eun (Unot, e); epos = p }
  else if accept_punct st "*" then
    let e = parse_unary st in
    { e = Ederef e; epos = p }
  else parse_postfix st

and parse_postfix st =
  let base = ref (parse_primary st) in
  let rec loop () =
    if peek_punct st "[" then begin
      let p = cur_pos st in
      bump st;
      let idx = parse_expr st in
      eat_punct st "]";
      base := { e = Eindex (!base, idx); epos = p };
      loop ()
    end
    else if peek_punct st "->" then begin
      let p = cur_pos st in
      bump st;
      let f = ident st in
      base := { e = Earrow (!base, f); epos = p };
      loop ()
    end
  in
  loop ();
  !base

and parse_primary st =
  let p = cur_pos st in
  match cur_tok st with
  | Lexer.INT i -> bump st; { e = Eint i; epos = p }
  | Lexer.FLOAT f -> bump st; { e = Efloat f; epos = p }
  | Lexer.KW "null" -> bump st; { e = Enull; epos = p }
  | Lexer.KW "malloc" ->
    bump st;
    eat_punct st "(";
    let size = parse_expr st in
    eat_punct st ")";
    { e = Emalloc size; epos = p }
  | Lexer.KW "sizeof" ->
    bump st;
    eat_punct st "(";
    let ty = parse_ty st in
    eat_punct st ")";
    { e = Esizeof ty; epos = p }
  | Lexer.IDENT name ->
    bump st;
    if peek_punct st "(" then begin
      bump st;
      let args = parse_args st in
      { e = Ecall (name, args); epos = p }
    end
    else { e = Evar name; epos = p }
  | Lexer.PUNCT "(" ->
    bump st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | _ -> fail st "expected expression"

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if accept_punct st "," then loop (e :: acc)
      else begin
        eat_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

(* --- statements ---------------------------------------------------- *)

(* An expression used in statement position is either a call (kept) or
   the left-hand side of an assignment (converted to an lvalue). *)
let expr_to_lvalue st (e : expr) =
  match e.e with
  | Evar v -> Lvar v
  | Eindex (a, i) -> Lindex (a, i)
  | Earrow (p, f) -> Larrow (p, f)
  | Ederef p -> Lderef p
  | Eint _ | Efloat _ | Enull | Ebin _ | Eun _ | Ecall _ | Emalloc _ | Esizeof _ ->
    error e.epos (ignore st; "not an assignable location")

let rec parse_stmt st =
  let p = cur_pos st in
  if peek_punct st "{" then begin
    bump st;
    let body = parse_stmts st in
    eat_punct st "}";
    { s = Sblock body; spos = p }
  end
  else if peek_kw st "if" then begin
    bump st;
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    let then_ = parse_stmt st in
    if peek_kw st "else" then begin
      bump st;
      let else_ = parse_stmt st in
      { s = Sif (c, then_, Some else_); spos = p }
    end
    else { s = Sif (c, then_, None); spos = p }
  end
  else if peek_kw st "while" then begin
    bump st;
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    let body = parse_stmt st in
    { s = Swhile (c, body); spos = p }
  end
  else if peek_kw st "for" then begin
    bump st;
    eat_punct st "(";
    let init = if peek_punct st ";" then None else Some (parse_simple_stmt st) in
    eat_punct st ";";
    let cond = if peek_punct st ";" then None else Some (parse_expr st) in
    eat_punct st ";";
    let step = if peek_punct st ")" then None else Some (parse_simple_stmt st) in
    eat_punct st ")";
    let body = parse_stmt st in
    { s = Sfor (init, cond, step, body); spos = p }
  end
  else if peek_kw st "return" then begin
    bump st;
    if accept_punct st ";" then { s = Sreturn None; spos = p }
    else begin
      let e = parse_expr st in
      eat_punct st ";";
      { s = Sreturn (Some e); spos = p }
    end
  end
  else if peek_kw st "break" then begin
    bump st;
    eat_punct st ";";
    { s = Sbreak; spos = p }
  end
  else if peek_kw st "continue" then begin
    bump st;
    eat_punct st ";";
    { s = Scontinue; spos = p }
  end
  else if peek_kw st "free" then begin
    bump st;
    eat_punct st "(";
    let e = parse_expr st in
    eat_punct st ")";
    eat_punct st ";";
    { s = Sfree e; spos = p }
  end
  else begin
    let stmt = parse_simple_stmt st in
    eat_punct st ";";
    stmt
  end

(* decl / assignment / expression — the ";"-free core shared by
   ordinary statements and for-headers. *)
and parse_simple_stmt st =
  let p = cur_pos st in
  if starts_type st then begin
    let ty = parse_ty st in
    let name = ident st in
    let init = if accept_punct st "=" then Some (parse_expr st) else None in
    { s = Sdecl (ty, name, init); spos = p }
  end
  else begin
    let e = parse_expr st in
    if accept_punct st "=" then begin
      let rhs = parse_expr st in
      { s = Sassign (expr_to_lvalue st e, rhs); spos = p }
    end
    else { s = Sexpr e; spos = p }
  end

and parse_stmts st =
  let rec loop acc =
    if peek_punct st "}" || cur_tok st = Lexer.EOF then List.rev acc
    else loop (parse_stmt st :: acc)
  in
  loop []

(* --- declarations --------------------------------------------------- *)

let parse_struct_decl st =
  eat_kw st "struct";
  let name = ident st in
  eat_punct st "{";
  let rec fields acc =
    if accept_punct st "}" then List.rev acc
    else begin
      let ty = parse_ty st in
      let fname = ident st in
      eat_punct st ";";
      fields ((ty, fname) :: acc)
    end
  in
  let sfields = fields [] in
  ignore (accept_punct st ";");
  Dstruct { sname = name; sfields }

let parse_params st =
  eat_punct st "(";
  if accept_punct st ")" then []
  else begin
    let rec loop acc =
      let ty = parse_ty st in
      let name = ident st in
      if accept_punct st "," then loop ((ty, name) :: acc)
      else begin
        eat_punct st ")";
        List.rev ((ty, name) :: acc)
      end
    in
    loop []
  end

let parse_top st =
  if peek_kw st "struct" && (match st.toks.(st.k + 2).Lexer.tok with
                             | Lexer.PUNCT "{" -> true
                             | _ -> false)
  then parse_struct_decl st
  else begin
    let ty = parse_ty st in
    let name = ident st in
    if peek_punct st "(" then begin
      let params = parse_params st in
      eat_punct st "{";
      let body = parse_stmts st in
      eat_punct st "}";
      Dfunc { fname = name; fret = ty; fparams = params; fbody = body }
    end
    else begin
      let init = if accept_punct st "=" then Some (parse_expr st) else None in
      eat_punct st ";";
      Dglobal { gname = name; gty = ty; ginit = init }
    end
  end

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; k = 0 } in
  let rec loop acc =
    if cur_tok st = Lexer.EOF then List.rev acc
    else loop (parse_top st :: acc)
  in
  loop []

let parse_expr_string src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; k = 0 } in
  let e = parse_expr st in
  (match cur_tok st with
   | Lexer.EOF -> ()
   | _ -> fail st "trailing tokens after expression");
  e
