type error = { where : string; what : string }

let err where fmt = Printf.ksprintf (fun what -> { where; what }) fmt

let check_func (m : Irmod.t) (f : Func.t) =
  let errors = ref [] in
  let nblocks = Array.length f.blocks in
  let nregs = Func.nregs f in
  let add e = errors := e :: !errors in
  let locus bid = Printf.sprintf "%s:L%d" f.name bid in
  if nblocks = 0 then add (err f.name "function has no blocks");
  List.iteri
    (fun i (r, ty) ->
      if r < 0 || r >= nregs then
        add (err f.name "parameter %d bound to out-of-range register %d" i r)
      else if not (Types.equal f.reg_tys.(r) ty) then
        add (err f.name "parameter %d type mismatch with reg_tys" i))
    f.params;
  let check_value where v =
    match v with
    | Instr.Reg r ->
      if r < 0 || r >= nregs then add (err where "register %%r%d out of range" r)
    | Instr.GlobalAddr g ->
      if not (List.exists (fun (gl : Irmod.global) -> gl.gname = g) m.globals) then
        add (err where "unknown global @%s" g)
    | Instr.Imm _ | Instr.Fimm _ | Instr.Null -> ()
  in
  let check_scalar where ty =
    match ty with
    | Types.I64 | Types.F64 | Types.Ptr _ -> ()
    | Types.Struct _ -> add (err where "aggregate load/store not allowed")
    | Types.Void -> add (err where "void load/store not allowed")
  in
  Array.iteri
    (fun bi (b : Func.block) ->
      let where = locus bi in
      if b.bid <> bi then add (err where "block id %d at index %d" b.bid bi);
      Array.iter
        (fun ins ->
          List.iter (check_value where) (Instr.used_values ins);
          (match Instr.defined_reg ins with
           | Some r when r < 0 || r >= nregs ->
             add (err where "defined register %%r%d out of range" r)
           | Some _ | None -> ());
          match ins with
          | Instr.Load (_, ty, _) | Instr.Store (ty, _, _) -> check_scalar where ty
          | Instr.Gep (_, _, _, scale) ->
            if scale <= 0 then add (err where "GEP scale must be positive")
          | Instr.Call (_, name, args) -> begin
            match Irmod.find_func_opt m name with
            | Some callee ->
              if List.length args <> Func.arity callee then
                add
                  (err where "call to %s with %d args (arity %d)" name
                     (List.length args) (Func.arity callee))
            | None ->
              if not (Irmod.is_intrinsic name) then
                add (err where "call to unknown function %s" name)
          end
          | Instr.Bin _ | Instr.Cmp _ | Instr.Mov _ | Instr.I2f _ | Instr.F2i _
          | Instr.Malloc _ | Instr.Free _ | Instr.Guard _ | Instr.DsInit _
          | Instr.DsAlloc _ | Instr.LoopCheck _ | Instr.Prefetch _ -> ())
        b.instrs;
      List.iter (check_value where) (Instr.term_used_values b.term);
      List.iter
        (fun s ->
          if s < 0 || s >= nblocks then add (err where "branch target L%d out of range" s))
        (Instr.term_successors b.term))
    f.blocks;
  List.rev !errors

let check_module m =
  List.concat_map (check_func m) m.funcs

let check_exn m =
  match check_module m with
  | [] -> ()
  | errs ->
    let msgs = List.map (fun e -> Printf.sprintf "  [%s] %s" e.where e.what) errs in
    failwith ("IR verification failed:\n" ^ String.concat "\n" msgs)
