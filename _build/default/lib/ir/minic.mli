(** One-call MiniC frontend: lex, parse, lower, verify. *)

val compile : string -> Irmod.t
(** [compile source] returns a verified IR module.
    @raise Ast.Syntax_error on malformed/ill-typed source.
    @raise Failure if lowering produced ill-formed IR (a frontend bug). *)

val compile_file : string -> Irmod.t
(** Read a [.mc] file and {!compile} it. *)

val describe_error : exn -> string option
(** Render a {!Ast.Syntax_error} as ["line L, col C: message"];
    [None] for other exceptions. *)
