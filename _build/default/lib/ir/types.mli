(** IR type system.

    Deliberately low-level, mirroring the paper's premise: "The LLVM
    type system does not recognize user-defined types" (§3).  MiniC
    struct *names* survive only as debug strings; analyses must recover
    data-structure identity from connectivity, exactly as CaRDS does
    with SeaDSA.

    Every scalar is 8 bytes, which keeps GEP arithmetic and the
    interpreter's heap model simple without losing any behaviour the
    paper's analyses depend on. *)

type t =
  | I64                       (** 64-bit integer *)
  | F64                       (** 64-bit float *)
  | Ptr of t                  (** typed pointer *)
  | Struct of string * t array(** field layout; name is debug-only *)
  | Void                      (** function results only *)

val size_of : t -> int
(** Byte size: 8 for scalars/pointers, sum of fields for structs,
    0 for [Void]. *)

val field_offset : t -> int -> int
(** [field_offset (Struct _) i] is the byte offset of field [i].
    @raise Invalid_argument on non-structs or out-of-range fields. *)

val field_type : t -> int -> t
(** Type of field [i] of a struct. *)

val is_pointer : t -> bool

val pointee : t -> t
(** @raise Invalid_argument on non-pointers. *)

val equal : t -> t -> bool
(** Structural equality ignoring struct debug names. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
