(** MiniC abstract syntax.

    MiniC is the C subset the paper's examples are written in
    (Listing 1 is valid MiniC): ints, doubles, pointers, heap structs,
    loops, functions, [malloc]/[free].  There is no address-of
    operator, so locals can live in registers, and no casts —
    [malloc]'s result adopts the type of its destination. *)

type pos = { line : int; col : int }

type ty =
  | TInt
  | TDouble
  | TVoid
  | TPtr of ty
  | TStruct of string

type binop =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Beq | Bne | Blt | Ble | Bgt | Bge
  | Band | Bor                           (** short-circuit && and || *)

type unop = Uneg | Unot

type expr = { e : expr_node; epos : pos }

and expr_node =
  | Eint of int64
  | Efloat of float
  | Enull
  | Evar of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ecall of string * expr list
  | Eindex of expr * expr               (** [a\[i\]] *)
  | Earrow of expr * string             (** [p->f] *)
  | Ederef of expr                      (** [*p] *)
  | Emalloc of expr                     (** [malloc(nbytes)] *)
  | Esizeof of ty

type lvalue =
  | Lvar of string
  | Lindex of expr * expr
  | Larrow of expr * string
  | Lderef of expr

type stmt = { s : stmt_node; spos : pos }

and stmt_node =
  | Sdecl of ty * string * expr option
  | Sassign of lvalue * expr
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sfor of stmt option * expr option * stmt option * stmt
  | Sreturn of expr option
  | Sblock of stmt list
  | Sbreak
  | Scontinue
  | Sfree of expr

type struct_decl = { sname : string; sfields : (ty * string) list }

type func_decl = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt list;
}

type global_decl = { gname : string; gty : ty; ginit : expr option }

type decl =
  | Dstruct of struct_decl
  | Dglobal of global_decl
  | Dfunc of func_decl

type program = decl list

exception Syntax_error of pos * string
(** Raised by the lexer/parser/lowering on malformed input. *)

val error : pos -> string -> 'a
(** Raise {!Syntax_error}. *)

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string
