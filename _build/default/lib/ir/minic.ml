let compile source =
  let ast = Parser.parse source in
  let m = Lower.lower ast in
  Verify.check_exn m;
  m

let compile_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let source = really_input_string ic n in
  close_in ic;
  compile source

let describe_error = function
  | Ast.Syntax_error (pos, msg) ->
    Some (Printf.sprintf "line %d, col %d: %s" pos.line pos.col msg)
  | _ -> None
