type reg = int

type value =
  | Reg of reg
  | Imm of int64
  | Fimm of float
  | Null
  | GlobalAddr of string

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Fadd | Fsub | Fmul | Fdiv

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type guard_kind = Gread | Gwrite

type instr =
  | Bin of reg * binop * value * value
  | Cmp of reg * cmpop * value * value
  | Mov of reg * value
  | I2f of reg * value
  | F2i of reg * value
  | Load of reg * Types.t * value
  | Store of Types.t * value * value
  | Gep of reg * value * value * int
  | Malloc of reg * value
  | Free of value
  | Call of reg option * string * value list
  | Guard of guard_kind * value
  | DsInit of reg * int
  | DsAlloc of reg * value * value
  | LoopCheck of reg * value list
  | Prefetch of value

type term =
  | Br of int
  | Cbr of value * int * int
  | Ret of value option
  | Unreachable

let defined_reg = function
  | Bin (r, _, _, _) | Cmp (r, _, _, _) | Mov (r, _) | I2f (r, _) | F2i (r, _)
  | Load (r, _, _) | Gep (r, _, _, _) | Malloc (r, _)
  | DsInit (r, _) | DsAlloc (r, _, _) | LoopCheck (r, _) -> Some r
  | Call (r, _, _) -> r
  | Store _ | Free _ | Guard _ | Prefetch _ -> None

let used_values = function
  | Bin (_, _, a, b) | Cmp (_, _, a, b) -> [ a; b ]
  | Mov (_, v) | I2f (_, v) | F2i (_, v) -> [ v ]
  | Load (_, _, addr) -> [ addr ]
  | Store (_, addr, v) -> [ addr; v ]
  | Gep (_, base, idx, _) -> [ base; idx ]
  | Malloc (_, size) -> [ size ]
  | Free v -> [ v ]
  | Call (_, _, args) -> args
  | Guard (_, addr) -> [ addr ]
  | DsInit (_, _) -> []
  | DsAlloc (_, size, handle) -> [ size; handle ]
  | LoopCheck (_, handles) -> handles
  | Prefetch addr -> [ addr ]

let term_used_values = function
  | Br _ | Unreachable -> []
  | Cbr (v, _, _) -> [ v ]
  | Ret (Some v) -> [ v ]
  | Ret None -> []

let term_successors = function
  | Br b -> [ b ]
  | Cbr (_, t, f) -> [ t; f ]
  | Ret _ | Unreachable -> []

let map_instr_values f = function
  | Bin (r, op, a, b) -> Bin (r, op, f a, f b)
  | Cmp (r, op, a, b) -> Cmp (r, op, f a, f b)
  | Mov (r, v) -> Mov (r, f v)
  | I2f (r, v) -> I2f (r, f v)
  | F2i (r, v) -> F2i (r, f v)
  | Load (r, ty, addr) -> Load (r, ty, f addr)
  | Store (ty, addr, v) -> Store (ty, f addr, f v)
  | Gep (r, base, idx, scale) -> Gep (r, f base, f idx, scale)
  | Malloc (r, size) -> Malloc (r, f size)
  | Free v -> Free (f v)
  | Call (r, name, args) -> Call (r, name, List.map f args)
  | Guard (k, addr) -> Guard (k, f addr)
  | DsInit (r, d) -> DsInit (r, d)
  | DsAlloc (r, size, handle) -> DsAlloc (r, f size, f handle)
  | LoopCheck (r, handles) -> LoopCheck (r, List.map f handles)
  | Prefetch addr -> Prefetch (f addr)

let map_term_values f = function
  | Br b -> Br b
  | Cbr (v, t, fl) -> Cbr (f v, t, fl)
  | Ret (Some v) -> Ret (Some (f v))
  | Ret None -> Ret None
  | Unreachable -> Unreachable

let is_float_binop = function
  | Fadd | Fsub | Fmul | Fdiv -> true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr -> false

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let cmpop_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_value fmt = function
  | Reg r -> Format.fprintf fmt "%%r%d" r
  | Imm i -> Format.fprintf fmt "%Ld" i
  | Fimm f -> Format.fprintf fmt "%g" f
  | Null -> Format.pp_print_string fmt "null"
  | GlobalAddr g -> Format.fprintf fmt "@%s" g

let pp_values fmt vs =
  List.iteri
    (fun i v ->
      if i > 0 then Format.pp_print_string fmt ", ";
      pp_value fmt v)
    vs

let pp_instr fmt = function
  | Bin (r, op, a, b) ->
    Format.fprintf fmt "%%r%d = %s %a, %a" r (binop_name op) pp_value a pp_value b
  | Cmp (r, op, a, b) ->
    Format.fprintf fmt "%%r%d = cmp %s %a, %a" r (cmpop_name op) pp_value a pp_value b
  | Mov (r, v) -> Format.fprintf fmt "%%r%d = mov %a" r pp_value v
  | I2f (r, v) -> Format.fprintf fmt "%%r%d = i2f %a" r pp_value v
  | F2i (r, v) -> Format.fprintf fmt "%%r%d = f2i %a" r pp_value v
  | Load (r, ty, addr) ->
    Format.fprintf fmt "%%r%d = load %a, %a" r Types.pp ty pp_value addr
  | Store (ty, addr, v) ->
    Format.fprintf fmt "store %a, %a <- %a" Types.pp ty pp_value addr pp_value v
  | Gep (r, base, idx, scale) ->
    Format.fprintf fmt "%%r%d = gep %a, %a x %d" r pp_value base pp_value idx scale
  | Malloc (r, size) -> Format.fprintf fmt "%%r%d = malloc %a" r pp_value size
  | Free v -> Format.fprintf fmt "free %a" pp_value v
  | Call (None, name, args) -> Format.fprintf fmt "call %s(%a)" name pp_values args
  | Call (Some r, name, args) ->
    Format.fprintf fmt "%%r%d = call %s(%a)" r name pp_values args
  | Guard (Gread, addr) -> Format.fprintf fmt "guard.r %a" pp_value addr
  | Guard (Gwrite, addr) -> Format.fprintf fmt "guard.w %a" pp_value addr
  | DsInit (r, d) -> Format.fprintf fmt "%%r%d = ds_init #%d" r d
  | DsAlloc (r, size, handle) ->
    Format.fprintf fmt "%%r%d = dsalloc %a, %a" r pp_value size pp_value handle
  | LoopCheck (r, handles) ->
    Format.fprintf fmt "%%r%d = loop_check [%a]" r pp_values handles
  | Prefetch addr -> Format.fprintf fmt "prefetch %a" pp_value addr

let pp_term fmt = function
  | Br b -> Format.fprintf fmt "br L%d" b
  | Cbr (v, t, f) -> Format.fprintf fmt "cbr %a, L%d, L%d" pp_value v t f
  | Ret None -> Format.pp_print_string fmt "ret"
  | Ret (Some v) -> Format.fprintf fmt "ret %a" pp_value v
  | Unreachable -> Format.pp_print_string fmt "unreachable"
