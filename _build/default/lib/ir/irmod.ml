type global = { gname : string; gty : Types.t; ginit : Instr.value }

type t = {
  globals : global list;
  funcs : Func.t list;
}

let empty = { globals = []; funcs = [] }

let find_func_opt t name =
  List.find_opt (fun (f : Func.t) -> f.name = name) t.funcs

let find_func t name =
  match find_func_opt t name with
  | Some f -> f
  | None -> raise Not_found

let has_func t name = Option.is_some (find_func_opt t name)

let add_func t f =
  let others = List.filter (fun (g : Func.t) -> g.Func.name <> f.Func.name) t.funcs in
  { t with funcs = others @ [ f ] }

let replace_funcs t funcs = { t with funcs }

let main t = find_func t "main"

let intrinsics = [ "print_int"; "print_float"; "abort"; "clock" ]

let is_intrinsic name = List.mem name intrinsics
