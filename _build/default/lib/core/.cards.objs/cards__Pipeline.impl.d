lib/core/pipeline.ml: Array Cards_analysis Cards_interp Cards_ir Cards_runtime Cards_transform List Printf
