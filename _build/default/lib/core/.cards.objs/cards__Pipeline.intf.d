lib/core/pipeline.mli: Cards_interp Cards_ir Cards_runtime Cards_transform
