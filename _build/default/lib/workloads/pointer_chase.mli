(** The Figure-9 microbenchmark family: the same element-wise sum
    ([c\[i\] = a\[i\] + b\[i\]]) expressed over data structures of
    increasing pointer-chasing intensity:

    - [array]   — three flat arrays (induction-variable friendly:
                  TrackFM's best case);
    - [vector]  — growable vectors (header + reallocated buffer
                  indirection);
    - [list]    — linked lists whose nodes are linked in {e shuffled}
                  pool order, so traversal is non-strided;
    - [map]     — binary search trees keyed by element index;
    - [hash]    — chained hash tables (bucket array + short chases,
                  the C++ unordered_map shape);
    - [tree]    — a recursive binary-tree sum.

    Each program prints one checksum; all variants of one [scale]
    compute comparable sums. *)

val variants : string list
(** ["array"; "vector"; "list"; "map"; "hash"; "tree"]. *)

val source : variant:string -> scale:int -> passes:int -> string
(** MiniC source for a variant.  [scale] = element count,
    [passes] = number of sweeps (prefetchers that learn layouts need a
    second pass to shine).
    @raise Invalid_argument on unknown variant. *)
