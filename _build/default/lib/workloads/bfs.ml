let source ~nodes ~edges ~sources =
  Printf.sprintf
    {|
// GAP-style BFS: CSR construction + multi-source traversals.
int N = %d;
int E = %d;
int SOURCES = %d;

int rng_state = 987654321;

int rnd(int bound) {
  rng_state = rng_state * 2862933555777941757 + 3037000493;
  int x = rng_state / 65536;
  if (x < 0) { x = 0 - x; }
  return x %% bound;
}

void main() {
  // ---- edge list ----
  int *src = malloc(E * 8);
  int *dst = malloc(E * 8);
  for (int e = 0; e < E; e = e + 1) {
    src[e] = rnd(N);
    dst[e] = rnd(N);
  }

  // ---- forward CSR ----
  int *deg = malloc(N * 8);
  for (int v = 0; v < N; v = v + 1) { deg[v] = 0; }
  for (int e = 0; e < E; e = e + 1) { deg[src[e]] = deg[src[e]] + 1; }
  int *off = malloc((N + 1) * 8);
  off[0] = 0;
  for (int v = 0; v < N; v = v + 1) { off[v + 1] = off[v] + deg[v]; }
  int *cursor = malloc(N * 8);
  for (int v = 0; v < N; v = v + 1) { cursor[v] = off[v]; }
  int *adj = malloc(E * 8);
  for (int e = 0; e < E; e = e + 1) {
    int u = src[e];
    adj[cursor[u]] = dst[e];
    cursor[u] = cursor[u] + 1;
  }

  // ---- reverse CSR (kept by direction-optimizing BFS) ----
  int *rdeg = malloc(N * 8);
  for (int v = 0; v < N; v = v + 1) { rdeg[v] = 0; }
  for (int e = 0; e < E; e = e + 1) { rdeg[dst[e]] = rdeg[dst[e]] + 1; }
  int *roff = malloc((N + 1) * 8);
  roff[0] = 0;
  for (int v = 0; v < N; v = v + 1) { roff[v + 1] = roff[v] + rdeg[v]; }
  int *rcursor = malloc(N * 8);
  for (int v = 0; v < N; v = v + 1) { rcursor[v] = roff[v]; }
  int *radj = malloc(E * 8);
  for (int e = 0; e < E; e = e + 1) {
    int u = dst[e];
    radj[rcursor[u]] = src[e];
    rcursor[u] = rcursor[u] + 1;
  }

  // ---- traversal state ----
  int *parent = malloc(N * 8);
  int *depth = malloc(N * 8);
  int *frontier = malloc(N * 8);
  int *next_frontier = malloc(N * 8);
  int *visited = malloc(N * 8);
  int *depth_hist = malloc(64 * 8);

  int total_reached = 0;
  int total_edges_scanned = 0;

  for (int s = 0; s < SOURCES; s = s + 1) {
    int root = rnd(N);
    for (int v = 0; v < N; v = v + 1) {
      parent[v] = 0 - 1;
      depth[v] = 0 - 1;
      visited[v] = 0;
    }
    for (int d = 0; d < 64; d = d + 1) { depth_hist[d] = 0; }
    frontier[0] = root;
    visited[root] = 1;
    parent[root] = root;
    depth[root] = 0;
    int flen = 1;
    int level = 0;
    int reached = 1;
    while (flen > 0) {
      int nlen = 0;
      for (int f = 0; f < flen; f = f + 1) {
        int u = frontier[f];
        int stop = off[u + 1];
        for (int e = off[u]; e < stop; e = e + 1) {
          total_edges_scanned = total_edges_scanned + 1;
          int w = adj[e];
          if (visited[w] == 0) {
            visited[w] = 1;
            parent[w] = u;
            depth[w] = level + 1;
            next_frontier[nlen] = w;
            nlen = nlen + 1;
            reached = reached + 1;
          }
        }
      }
      // swap frontiers
      for (int f = 0; f < nlen; f = f + 1) { frontier[f] = next_frontier[f]; }
      flen = nlen;
      level = level + 1;
      if (level < 64) { depth_hist[level] = depth_hist[level] + nlen; }
    }
    total_reached = total_reached + reached;
    // A reverse-graph sanity pass: count how many reached nodes have a
    // reachable in-neighbour (exercises the reverse CSR).
    int consistent = 0;
    for (int v = 0; v < N; v = v + 1) {
      if (visited[v] == 1 && v != root) {
        int stop = roff[v + 1];
        int okv = 0;
        for (int e = roff[v]; e < stop; e = e + 1) {
          if (visited[radj[e]] == 1) { okv = 1; }
        }
        consistent = consistent + okv;
      }
    }
    total_reached = total_reached + consistent / (N + 1);
  }

  print_int(total_reached);
  print_int(total_edges_scanned);
}
|}
    nodes edges sources
