(** PolyBench [fdtd-apml]: the Finite-Difference Time-Domain kernel
    with an Anisotropic Perfectly Matched Layer boundary (§5).

    The paper picks this benchmark because it has the largest number of
    data structures in the PolyBench suite (15 identified by CaRDS):
    six 1-D coefficient vectors ([czm], [czp], [cxmh], [cxph], [cymh],
    [cyph]), 2-D boundary planes ([Ry], [Ax]), and 3-D field volumes
    ([Ex], [Ey], [Hz], [Bza]) of very different sizes — ideal for
    exercising remoting policies that must pick {e which} structures to
    localize.

    3-D arrays are flattened with explicit index arithmetic, exactly
    what the original C produces at the IR level. *)

val source : cz:int -> cym:int -> cxm:int -> steps:int -> string
(** MiniC source.  Grid of [cz × cym × cxm] cells, [steps] time
    steps.  Working set ≈ 4 volumes × (cz·cym·cxm) × 8 bytes. *)
