let source ~cz ~cym ~cxm ~steps =
  Printf.sprintf
    {|
// PolyBench fdtd-apml (FDTD with anisotropic perfectly matched layer).
int CZ = %d;
int CYM = %d;
int CXM = %d;
int STEPS = %d;

double MUI = 2.307;
double CH = 0.5;

void init_coeff(double *v, int n, double base) {
  for (int i = 0; i < n; i = i + 1) {
    v[i] = base + 0.001 * i;
  }
}

void init_volume(double *v, int n, double base) {
  for (int i = 0; i < n; i = i + 1) {
    v[i] = base + 0.0001 * (i %% 1000);
  }
}

void main() {
  int plane = CYM + 1;
  int vol = CZ * (CYM + 1) * (CXM + 1);

  // 1-D PML coefficient vectors (6 structures).
  double *czm = malloc(CZ * 8);
  double *czp = malloc(CZ * 8);
  double *cxmh = malloc((CXM + 1) * 8);
  double *cxph = malloc((CXM + 1) * 8);
  double *cymh = malloc((CYM + 1) * 8);
  double *cyph = malloc((CYM + 1) * 8);

  // 2-D boundary planes (2 structures).
  double *Ry = malloc(CZ * plane * 8);
  double *Ax = malloc(CZ * plane * 8);

  // 3-D field volumes (4 structures).
  double *Ex = malloc(vol * 8);
  double *Ey = malloc(vol * 8);
  double *Hz = malloc(vol * 8);
  double *Bza = malloc(vol * 8);

  // Scratch (2 structures).
  double *clf_row = malloc((CXM + 1) * 8);
  double *tmp_row = malloc((CXM + 1) * 8);

  init_coeff(czm, CZ, 0.5);
  init_coeff(czp, CZ, 0.7);
  init_coeff(cxmh, CXM + 1, 0.4);
  init_coeff(cxph, CXM + 1, 1.1);
  init_coeff(cymh, CYM + 1, 0.6);
  init_coeff(cyph, CYM + 1, 1.2);
  init_volume(Ry, CZ * plane, 0.1);
  init_volume(Ax, CZ * plane, 0.2);
  init_volume(Ex, vol, 1.0);
  init_volume(Ey, vol, 2.0);
  init_volume(Hz, vol, 0.0);
  init_volume(Bza, vol, 0.3);

  int row = CXM + 1;
  int slab = (CYM + 1) * (CXM + 1);

  for (int t = 0; t < STEPS; t = t + 1) {
    for (int iz = 0; iz < CZ; iz = iz + 1) {
      for (int iy = 0; iy < CYM; iy = iy + 1) {
        for (int ix = 0; ix < CXM; ix = ix + 1) {
          int c = iz * slab + iy * row + ix;
          double clf = Ex[c] - Ex[c + row] + Ey[c + 1] - Ey[c];
          double tmpv = (cymh[iy] / cyph[iy]) * Bza[c]
                      - (CH / cyph[iy]) * clf;
          Hz[c] = (cxmh[ix] / cxph[ix]) * Hz[c]
                + (MUI * czp[iz] / cxph[ix]) * tmpv
                - (MUI * czm[iz] / cxph[ix]) * Bza[c];
          Bza[c] = tmpv;
          clf_row[ix] = clf;
          tmp_row[ix] = tmpv;
        }
        // iy boundary column (uses the Ax plane).
        int cb = iz * slab + iy * row + CXM;
        double clf = Ex[cb] - Ax[iz * plane + iy] + Ey[cb + 1] - Ey[cb];
        double tmpv = (cymh[iy] / cyph[iy]) * Bza[cb] - (CH / cyph[iy]) * clf;
        Hz[cb] = (cxmh[CXM] / cxph[CXM]) * Hz[cb]
               + (MUI * czp[iz] / cxph[CXM]) * tmpv
               - (MUI * czm[iz] / cxph[CXM]) * Bza[cb];
        Bza[cb] = tmpv;
      }
      // iz/iy edge row (uses the Ry plane).
      for (int ix = 0; ix < CXM; ix = ix + 1) {
        int ce = iz * slab + CYM * row + ix;
        double clf = Ex[ce] - Ry[iz * plane + ix %% plane]
                   + Ey[ce + 1] - Ey[ce];
        double tmpv = (cymh[CYM] / cyph[CYM]) * Bza[ce] - (CH / cyph[CYM]) * clf;
        Hz[ce] = (cxmh[ix] / cxph[ix]) * Hz[ce]
               + (MUI * czp[iz] / cxph[ix]) * tmpv
               - (MUI * czm[iz] / cxph[ix]) * Bza[ce];
        Bza[ce] = tmpv;
      }
    }
  }

  double check = 0.0;
  for (int i = 0; i < vol; i = i + 1) {
    check = check + Hz[i];
  }
  print_float(check);
}
|}
    cz cym cxm steps
