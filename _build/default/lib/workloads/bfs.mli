(** Breadth-first search over a synthetic graph, GAP-benchmark style
    (§5): irregular access patterns over many structures.

    The program builds a uniformly-random directed multigraph in CSR
    form (edge list → degree counting → prefix sum → placement, plus
    the reverse CSR, as direction-optimizing GAP BFS keeps), then runs
    BFS from several sources, producing a parent array and a depth
    histogram.  Frontier queues, visited flags, degree/offset/cursor
    arrays, edge lists, and histograms all come from distinct
    allocation sites, giving DSA a large population of disjoint
    structures with wildly different sizes and access patterns —
    the edges array is huge and scanned irregularly, the frontiers are
    small and hot. *)

val source : nodes:int -> edges:int -> sources:int -> string
(** MiniC source.  Working set ≈ (2·[edges] + 10·[nodes]) × 8 bytes. *)
