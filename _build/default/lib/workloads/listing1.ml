let source ~elems ~ntimes =
  Printf.sprintf
    {|
// Paper Listing 1: two data structures, ds2 rewritten in a loop.
int ARRAY_SIZE = %d;
int NTIMES = %d;

double* alloc() {
  return malloc(ARRAY_SIZE * 8);
}

void set(double *ds, double val) {
  for (int j = 0; j < ARRAY_SIZE; j = j + 1) {
    ds[j] = val;
  }
}

double checksum(double *ds) {
  double s = 0.0;
  for (int j = 0; j < ARRAY_SIZE; j = j + 1) {
    s = s + ds[j];
  }
  return s;
}

void main() {
  double *ds1 = alloc();
  double *ds2 = alloc();
  set(ds1, 0.0);
  set(ds2, 1.0);
  for (int k = 0; k < NTIMES; k = k + 1) {
    set(ds2, 1.0 * k);
  }
  print_float(checksum(ds1));
  print_float(checksum(ds2));
}
|}
    elems ntimes

let expected_output ~elems ~ntimes =
  let last = float_of_int (ntimes - 1) in
  [ Printf.sprintf "%.6g" 0.0;
    Printf.sprintf "%.6g" (last *. float_of_int elems) ]
