let variants = [ "array"; "vector"; "list"; "map"; "hash"; "tree" ]

(* Shared MiniC xorshift-style PRNG (kept positive for %). *)
let rng_decls =
  {|
int rng_state = 123456789;

int rnd(int bound) {
  rng_state = rng_state * 2862933555777941757 + 3037000493;
  int x = rng_state / 65536;
  if (x < 0) { x = 0 - x; }
  return x % bound;
}
|}

let array_src ~scale ~passes =
  Printf.sprintf
    {|
// Fig. 9 "array": induction variables everywhere; TrackFM's home turf.
int N = %d;
int PASSES = %d;

void main() {
  double *a = malloc(N * 8);
  double *b = malloc(N * 8);
  double *c = malloc(N * 8);
  for (int i = 0; i < N; i = i + 1) {
    a[i] = 1.0 * i;
    b[i] = 2.0 * i;
  }
  double check = 0.0;
  for (int p = 0; p < PASSES; p = p + 1) {
    double s = 0.0;
    for (int i = 0; i < N; i = i + 1) {
      c[i] = a[i] + b[i];
      s = s + c[i];
    }
    check = check + s;
  }
  print_float(check);
}
|}
    scale passes

let vector_src ~scale ~passes =
  Printf.sprintf
    {|
// Fig. 9 "vector": C++-vector-like growable buffers; every access
// indirects through the header, and push reallocates on growth.
struct Vec {
  int len;
  int cap;
  double *data;
}

int N = %d;
int PASSES = %d;

struct Vec *vec_new() {
  struct Vec *v = malloc(sizeof(struct Vec));
  v->len = 0;
  v->cap = 4;
  v->data = malloc(4 * 8);
  return v;
}

void vec_push(struct Vec *v, double x) {
  if (v->len == v->cap) {
    double *bigger = malloc(v->cap * 2 * 8);
    for (int i = 0; i < v->len; i = i + 1) {
      bigger[i] = v->data[i];
    }
    free(v->data);
    v->data = bigger;
    v->cap = v->cap * 2;
  }
  v->data[v->len] = x;
  v->len = v->len + 1;
}

double vec_get(struct Vec *v, int i) {
  return v->data[i];
}

void vec_set(struct Vec *v, int i, double x) {
  v->data[i] = x;
}

void main() {
  struct Vec *a = vec_new();
  struct Vec *b = vec_new();
  struct Vec *c = vec_new();
  for (int i = 0; i < N; i = i + 1) {
    vec_push(a, 1.0 * i);
    vec_push(b, 2.0 * i);
    vec_push(c, 0.0);
  }
  double check = 0.0;
  for (int p = 0; p < PASSES; p = p + 1) {
    double s = 0.0;
    for (int i = 0; i < N; i = i + 1) {
      vec_set(c, i, vec_get(a, i) + vec_get(b, i));
      s = s + vec_get(c, i);
    }
    check = check + s;
  }
  print_float(check);
}
|}
    scale passes

let list_src ~scale ~passes =
  Printf.sprintf
    {|
// Fig. 9 "list": nodes are linked in *shuffled* order, so the chase
// never matches pool layout and stride prefetching learns nothing.
struct Node {
  double val;
  struct Node *next;
}
%s
int N = %d;
int PASSES = %d;

// Build a list over a shuffled permutation; returns the head.
struct Node *build(double mult, struct Node **slots, int *perm) {
  for (int i = 0; i < N; i = i + 1) {
    struct Node *n = malloc(sizeof(struct Node));
    n->val = mult * i;
    n->next = null;
    slots[i] = n;
  }
  for (int i = 0; i + 1 < N; i = i + 1) {
    struct Node *cur = slots[perm[i]];
    cur->next = slots[perm[i + 1]];
  }
  return slots[perm[0]];
}

void main() {
  int *perm = malloc(N * 8);
  for (int i = 0; i < N; i = i + 1) { perm[i] = i; }
  for (int i = N - 1; i > 0; i = i - 1) {
    int j = rnd(i + 1);
    int tmp = perm[i];
    perm[i] = perm[j];
    perm[j] = tmp;
  }
  struct Node **slots_a = malloc(N * 8);
  struct Node **slots_b = malloc(N * 8);
  struct Node **slots_c = malloc(N * 8);
  struct Node *a = build(1.0, slots_a, perm);
  struct Node *b = build(2.0, slots_b, perm);
  struct Node *c = build(0.0, slots_c, perm);
  double check = 0.0;
  for (int p = 0; p < PASSES; p = p + 1) {
    struct Node *pa = a;
    struct Node *pb = b;
    struct Node *pc = c;
    double s = 0.0;
    while (pc != null) {
      pc->val = pa->val + pb->val;
      s = s + pc->val;
      pa = pa->next;
      pb = pb->next;
      pc = pc->next;
    }
    check = check + s;
  }
  print_float(check);
}
|}
    rng_decls scale passes

let map_src ~scale ~passes =
  Printf.sprintf
    {|
// Fig. 9 "map": binary search trees keyed by element index; each sum
// does three root-to-leaf chases.
struct Entry {
  int key;
  double val;
  struct Entry *left;
  struct Entry *right;
}
%s
int N = %d;
int PASSES = %d;

struct Entry *insert(struct Entry *root, int key, double val) {
  if (root == null) {
    struct Entry *e = malloc(sizeof(struct Entry));
    e->key = key;
    e->val = val;
    e->left = null;
    e->right = null;
    return e;
  }
  if (key < root->key) {
    root->left = insert(root->left, key, val);
  } else {
    if (key > root->key) {
      root->right = insert(root->right, key, val);
    } else {
      root->val = val;
    }
  }
  return root;
}

double get(struct Entry *root, int key) {
  struct Entry *cur = root;
  while (cur != null) {
    if (key == cur->key) { return cur->val; }
    if (key < cur->key) { cur = cur->left; } else { cur = cur->right; }
  }
  return 0.0;
}

void main() {
  struct Entry *a = null;
  struct Entry *b = null;
  struct Entry *c = null;
  // Insert keys in random order for balanced-ish trees.
  int *perm = malloc(N * 8);
  for (int i = 0; i < N; i = i + 1) { perm[i] = i; }
  for (int i = N - 1; i > 0; i = i - 1) {
    int j = rnd(i + 1);
    int tmp = perm[i];
    perm[i] = perm[j];
    perm[j] = tmp;
  }
  for (int i = 0; i < N; i = i + 1) {
    int k = perm[i];
    a = insert(a, k, 1.0 * k);
    b = insert(b, k, 2.0 * k);
    c = insert(c, k, 0.0);
  }
  double check = 0.0;
  for (int p = 0; p < PASSES; p = p + 1) {
    double s = 0.0;
    for (int k = 0; k < N; k = k + 1) {
      double v = get(a, k) + get(b, k);
      c = insert(c, k, v);
      s = s + v;
    }
    check = check + s;
  }
  print_float(check);
}
|}
    rng_decls scale passes

let hash_src ~scale ~passes =
  Printf.sprintf
    {|
// Fig. 9 "hash": chained hash tables — a bucket-array indirection
// followed by a short pointer chase, the C++ unordered_map shape.
struct Cell {
  int key;
  double val;
  struct Cell *next;
}
%s
int N = %d;
int PASSES = %d;
int NBUCKETS = %d;

int bucket_of(int key) {
  int h = key * 2654435761;
  if (h < 0) { h = 0 - h; }
  return h %% NBUCKETS;
}

void put(struct Cell **buckets, int key, double val) {
  int b = bucket_of(key);
  struct Cell *p = buckets[b];
  while (p != null) {
    if (p->key == key) { p->val = val; return; }
    p = p->next;
  }
  struct Cell *e = malloc(sizeof(struct Cell));
  e->key = key;
  e->val = val;
  e->next = buckets[b];
  buckets[b] = e;
}

double lookup(struct Cell **buckets, int key) {
  struct Cell *p = buckets[bucket_of(key)];
  while (p != null) {
    if (p->key == key) { return p->val; }
    p = p->next;
  }
  return 0.0;
}

struct Cell **table_new() {
  struct Cell **buckets = malloc(NBUCKETS * 8);
  for (int b = 0; b < NBUCKETS; b = b + 1) { buckets[b] = null; }
  return buckets;
}

void main() {
  struct Cell **a = table_new();
  struct Cell **b = table_new();
  struct Cell **c = table_new();
  // Insert keys in shuffled order so chains interleave in the pools.
  int *perm = malloc(N * 8);
  for (int i = 0; i < N; i = i + 1) { perm[i] = i; }
  for (int i = N - 1; i > 0; i = i - 1) {
    int j = rnd(i + 1);
    int tmp = perm[i];
    perm[i] = perm[j];
    perm[j] = tmp;
  }
  for (int i = 0; i < N; i = i + 1) {
    int k = perm[i];
    put(a, k, 1.0 * k);
    put(b, k, 2.0 * k);
    put(c, k, 0.0);
  }
  double check = 0.0;
  for (int p = 0; p < PASSES; p = p + 1) {
    double s = 0.0;
    for (int k = 0; k < N; k = k + 1) {
      double v = lookup(a, k) + lookup(b, k);
      put(c, k, v);
      s = s + v;
    }
    check = check + s;
  }
  print_float(check);
}
|}
    rng_decls scale passes (max 16 (scale / 4))

let tree_src ~scale ~passes =
  Printf.sprintf
    {|
// Fig. 9 "tree": recursive binary-tree sum (greedy-prefetcher food).
struct Tn {
  double val;
  struct Tn *left;
  struct Tn *right;
}

int N = %d;
int PASSES = %d;

struct Tn *build(int lo, int hi, double mult) {
  if (lo >= hi) { return null; }
  int mid = (lo + hi) / 2;
  struct Tn *n = malloc(sizeof(struct Tn));
  n->val = mult * mid;
  n->left = build(lo, mid, mult);
  n->right = build(mid + 1, hi, mult);
  return n;
}

double tsum(struct Tn *n) {
  if (n == null) { return 0.0; }
  return n->val + tsum(n->left) + tsum(n->right);
}

void add_into(struct Tn *c, struct Tn *a, struct Tn *b) {
  if (c == null) { return; }
  c->val = a->val + b->val;
  add_into(c->left, a->left, b->left);
  add_into(c->right, a->right, b->right);
}

void main() {
  struct Tn *a = build(0, N, 1.0);
  struct Tn *b = build(0, N, 2.0);
  struct Tn *c = build(0, N, 0.0);
  double check = 0.0;
  for (int p = 0; p < PASSES; p = p + 1) {
    add_into(c, a, b);
    check = check + tsum(c);
  }
  print_float(check);
}
|}
    scale passes

let source ~variant ~scale ~passes =
  match variant with
  | "array" -> array_src ~scale ~passes
  | "vector" -> vector_src ~scale ~passes
  | "list" -> list_src ~scale ~passes
  | "map" -> map_src ~scale ~passes
  | "hash" -> hash_src ~scale ~passes
  | "tree" -> tree_src ~scale ~passes
  | v -> invalid_arg (Printf.sprintf "Pointer_chase.source: unknown variant %s" v)
