lib/workloads/ftfdapml.ml: Printf
