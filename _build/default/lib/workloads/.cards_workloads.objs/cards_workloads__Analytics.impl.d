lib/workloads/analytics.ml: Printf
