lib/workloads/pointer_chase.mli:
