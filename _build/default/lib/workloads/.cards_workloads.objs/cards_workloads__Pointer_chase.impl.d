lib/workloads/pointer_chase.ml: Printf
