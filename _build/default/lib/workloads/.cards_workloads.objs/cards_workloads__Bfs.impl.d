lib/workloads/bfs.ml: Printf
