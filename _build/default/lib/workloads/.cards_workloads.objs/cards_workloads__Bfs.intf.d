lib/workloads/bfs.mli:
