lib/workloads/listing1.ml: Printf
