lib/workloads/ftfdapml.mli:
