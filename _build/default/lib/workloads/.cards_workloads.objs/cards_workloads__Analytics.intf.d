lib/workloads/analytics.mli:
