lib/workloads/listing1.mli:
