(** The paper's Listing 1: two data structures initialized by the same
    [alloc] helper, one of them ([ds2]) re-written [NTIMES] in a loop.
    The motivating example for per-instance remoting policies (Fig. 4):
    with k = 50 % one structure can be localized, and a policy that
    picks the hot [ds2] (Max Use) beats one that picks [ds1]. *)

val source : elems:int -> ntimes:int -> string
(** MiniC source.  [elems] is the element count of each array
    (the paper uses 3 GB per structure; scale to taste), [ntimes] the
    rewrite count of [ds2]. *)

val expected_output : elems:int -> ntimes:int -> string list
(** The program's print output (for correctness checks). *)
