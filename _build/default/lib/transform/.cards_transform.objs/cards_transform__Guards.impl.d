lib/transform/guards.ml: Cards_analysis Cards_ir List Rewrite
