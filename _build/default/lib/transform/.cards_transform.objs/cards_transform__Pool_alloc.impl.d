lib/transform/pool_alloc.ml: Cards_analysis Cards_ir Hashtbl List Rewrite
