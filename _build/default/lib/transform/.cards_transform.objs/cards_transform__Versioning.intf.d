lib/transform/versioning.mli: Cards_analysis Cards_ir
