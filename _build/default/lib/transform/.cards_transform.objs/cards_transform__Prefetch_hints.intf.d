lib/transform/prefetch_hints.mli: Cards_analysis
