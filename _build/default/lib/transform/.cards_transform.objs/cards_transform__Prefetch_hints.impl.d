lib/transform/prefetch_hints.ml: Cards_analysis
