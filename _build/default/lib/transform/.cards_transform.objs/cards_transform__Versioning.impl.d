lib/transform/versioning.ml: Array Cards_analysis Cards_ir Cards_util Hashtbl List Option Rewrite
