lib/transform/rewrite.mli: Cards_ir
