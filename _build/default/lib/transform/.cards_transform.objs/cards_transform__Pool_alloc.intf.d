lib/transform/pool_alloc.mli: Cards_analysis Cards_ir
