lib/transform/rewrite.ml: Array Cards_ir Cards_util
