lib/transform/guard_elim.mli: Cards_analysis Cards_ir
