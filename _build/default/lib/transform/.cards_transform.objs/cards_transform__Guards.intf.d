lib/transform/guards.mli: Cards_analysis Cards_ir
