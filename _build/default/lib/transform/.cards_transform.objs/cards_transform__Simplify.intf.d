lib/transform/simplify.mli: Cards_ir
