lib/transform/guard_elim.ml: Array Cards_analysis Cards_ir Cards_util Hashtbl Int64 List Option Rewrite
