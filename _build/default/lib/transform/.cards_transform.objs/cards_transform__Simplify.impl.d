lib/transform/simplify.ml: Array Cards_analysis Cards_ir Hashtbl Int64 List Option
