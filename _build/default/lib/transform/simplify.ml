module Func = Cards_ir.Func
module Instr = Cards_ir.Instr
module Irmod = Cards_ir.Irmod
module A = Cards_analysis

let removed = ref 0
let removed_last_run () = !removed

(* ---------- constant folding ---------- *)

let fold_ibin op a b =
  let open Instr in
  match op with
  | Add -> Some (Int64.add a b)
  | Sub -> Some (Int64.sub a b)
  | Mul -> Some (Int64.mul a b)
  | Div -> if b = 0L then None else Some (Int64.div a b)
  | Rem -> if b = 0L then None else Some (Int64.rem a b)
  | And -> Some (Int64.logand a b)
  | Or -> Some (Int64.logor a b)
  | Xor -> Some (Int64.logxor a b)
  | Shl -> Some (Int64.shift_left a (Int64.to_int b land 63))
  | Shr -> Some (Int64.shift_right a (Int64.to_int b land 63))
  | Fadd | Fsub | Fmul | Fdiv -> None

let fold_fbin op a b =
  let open Instr in
  match op with
  | Fadd -> Some (a +. b)
  | Fsub -> Some (a -. b)
  | Fmul -> Some (a *. b)
  | Fdiv -> Some (a /. b)
  | _ -> None

let fold_icmp op a b =
  let open Instr in
  let r =
    match op with
    | Eq -> a = b | Ne -> a <> b | Lt -> a < b
    | Le -> a <= b | Gt -> a > b | Ge -> a >= b
  in
  if r then 1L else 0L

let fold_fcmp op (a : float) b =
  let open Instr in
  let r =
    match op with
    | Eq -> a = b | Ne -> a <> b | Lt -> a < b
    | Le -> a <= b | Gt -> a > b | Ge -> a >= b
  in
  if r then 1L else 0L

let fold_instr ins =
  match ins with
  | Instr.Bin (r, op, Instr.Imm a, Instr.Imm b) -> begin
    match fold_ibin op a b with
    | Some v -> Instr.Mov (r, Instr.Imm v)
    | None -> ins
  end
  | Instr.Bin (r, op, Instr.Fimm a, Instr.Fimm b) -> begin
    match fold_fbin op a b with
    | Some v -> Instr.Mov (r, Instr.Fimm v)
    | None -> ins
  end
  (* algebraic identities *)
  | Instr.Bin (r, Instr.Add, v, Instr.Imm 0L)
  | Instr.Bin (r, Instr.Add, Instr.Imm 0L, v)
  | Instr.Bin (r, Instr.Sub, v, Instr.Imm 0L) -> Instr.Mov (r, v)
  | Instr.Bin (r, Instr.Mul, v, Instr.Imm 1L)
  | Instr.Bin (r, Instr.Mul, Instr.Imm 1L, v) -> Instr.Mov (r, v)
  | Instr.Bin (r, Instr.Mul, _, Instr.Imm 0L)
  | Instr.Bin (r, Instr.Mul, Instr.Imm 0L, _) -> Instr.Mov (r, Instr.Imm 0L)
  | Instr.Cmp (r, op, Instr.Imm a, Instr.Imm b) ->
    Instr.Mov (r, Instr.Imm (fold_icmp op a b))
  | Instr.Cmp (r, op, Instr.Fimm a, Instr.Fimm b) ->
    Instr.Mov (r, Instr.Imm (fold_fcmp op a b))
  | Instr.I2f (r, Instr.Imm a) -> Instr.Mov (r, Instr.Fimm (Int64.to_float a))
  | Instr.F2i (r, Instr.Fimm a) ->
    Instr.Mov (r, Instr.Imm (Int64.of_float a))
  | Instr.Gep (r, base, Instr.Imm 0L, _) -> Instr.Mov (r, base)
  | _ -> ins

(* ---------- copy / constant propagation ---------- *)

(* A register can be replaced by its source value when it has a single
   definition [r <- Mov v] with [v] an immediate (or a register that is
   never redefined), and the definition dominates the use. *)
let propagate (f : Func.t) =
  let cfg = A.Cfg.of_func f in
  let dom = A.Dominators.compute cfg in
  (* def counts + the unique def site *)
  let counts = Hashtbl.create 32 in
  let defsite = Hashtbl.create 32 in
  Func.iter_instrs f (fun bid idx ins ->
      match Instr.defined_reg ins with
      | Some r ->
        Hashtbl.replace counts r
          (1 + Option.value (Hashtbl.find_opt counts r) ~default:0);
        Hashtbl.replace defsite r (bid, idx, ins)
      | None -> ());
  let single_def r =
    match Hashtbl.find_opt counts r with
    | Some 1 -> Hashtbl.find_opt defsite r
    | _ -> None
  in
  let is_param r = List.exists (fun (pr, _) -> pr = r) f.params in
  (* the replacement value for r, if any *)
  let replacement r =
    if is_param r then None
    else
      match single_def r with
      | Some (bid, idx, Instr.Mov (_, (Instr.Imm _ | Instr.Fimm _ | Instr.Null as v))) ->
        Some (bid, idx, v)
      | Some (bid, idx, Instr.Mov (_, (Instr.Reg src as v)))
        when (not (is_param src))
             && Hashtbl.find_opt counts src = Some 1
             || (is_param src && Hashtbl.find_opt counts src = None) ->
        Some (bid, idx, v)
      | _ -> None
  in
  let changed = ref false in
  let rewrite_value ~ubid ~uidx v =
    match v with
    | Instr.Reg r -> begin
      match replacement r with
      | Some (dbid, didx, v')
        when
          (dbid = ubid && didx < uidx)
          || (dbid <> ubid && A.Dominators.dominates dom dbid ubid) ->
        changed := true;
        v'
      | _ -> v
    end
    | _ -> v
  in
  let blocks =
    Array.map
      (fun (b : Func.block) ->
        let instrs =
          Array.mapi
            (fun idx ins ->
              Instr.map_instr_values (rewrite_value ~ubid:b.bid ~uidx:idx) ins)
            b.instrs
        in
        let term =
          Instr.map_term_values
            (rewrite_value ~ubid:b.bid ~uidx:(Array.length b.instrs))
            b.term
        in
        { b with Func.instrs; term })
      f.blocks
  in
  ({ f with Func.blocks = blocks }, !changed)

(* ---------- branch folding ---------- *)

let fold_branches (f : Func.t) =
  let changed = ref false in
  let blocks =
    Array.map
      (fun (b : Func.block) ->
        match b.Func.term with
        | Instr.Cbr (Instr.Imm c, bt, bf) ->
          changed := true;
          { b with Func.term = Instr.Br (if c <> 0L then bt else bf) }
        | Instr.Cbr (Instr.Null, _, bf) ->
          changed := true;
          { b with Func.term = Instr.Br bf }
        | _ -> b)
      f.Func.blocks
  in
  ({ f with Func.blocks = blocks }, !changed)

(* ---------- dead code elimination ---------- *)

let has_side_effect = function
  | Instr.Store _ | Instr.Call _ | Instr.Guard _ | Instr.DsInit _
  | Instr.DsAlloc _ | Instr.Malloc _ | Instr.Free _ | Instr.LoopCheck _
  | Instr.Prefetch _ -> true
  | Instr.Bin _ | Instr.Cmp _ | Instr.Mov _ | Instr.I2f _ | Instr.F2i _
  | Instr.Load _ | Instr.Gep _ -> false

let dce (f : Func.t) =
  (* live registers: used by side-effecting instrs / terminators /
     other live instrs, to a fixpoint *)
  let live = Hashtbl.create 64 in
  let changed = ref true in
  while !changed do
    changed := false;
    Func.iter_instrs f (fun _ _ ins ->
        let keep =
          has_side_effect ins
          ||
          match Instr.defined_reg ins with
          | Some r -> Hashtbl.mem live r
          | None -> true
        in
        if keep then
          List.iter
            (fun v ->
              match v with
              | Instr.Reg r when not (Hashtbl.mem live r) ->
                Hashtbl.replace live r ();
                changed := true
              | _ -> ())
            (Instr.used_values ins));
    Array.iter
      (fun (b : Func.block) ->
        List.iter
          (fun v ->
            match v with
            | Instr.Reg r when not (Hashtbl.mem live r) ->
              Hashtbl.replace live r ();
              changed := true
            | _ -> ())
          (Instr.term_used_values b.Func.term))
      f.Func.blocks
  done;
  let dropped = ref 0 in
  let blocks =
    Array.map
      (fun (b : Func.block) ->
        let instrs =
          Array.of_list
            (List.filter
               (fun ins ->
                 let keep =
                   has_side_effect ins
                   ||
                   match Instr.defined_reg ins with
                   | Some r -> Hashtbl.mem live r
                   | None -> true
                 in
                 if not keep then incr dropped;
                 keep)
               (Array.to_list b.Func.instrs))
        in
        { b with Func.instrs })
      f.Func.blocks
  in
  ({ f with Func.blocks = blocks }, !dropped)

(* ---------- driver ---------- *)

let run_func f =
  let rec go f budget =
    if budget = 0 then f
    else begin
      let f =
        Func.map_blocks f (fun b ->
            { b with Func.instrs = Array.map fold_instr b.Func.instrs })
      in
      let f, prop_changed = propagate f in
      let f, br_changed = fold_branches f in
      let f, dropped = dce f in
      removed := !removed + dropped;
      if prop_changed || br_changed || dropped > 0 then go f (budget - 1) else f
    end
  in
  go f 8

let run (m : Irmod.t) =
  removed := 0;
  let m' = Irmod.replace_funcs m (List.map run_func m.funcs) in
  Cards_ir.Verify.check_exn m';
  m'
