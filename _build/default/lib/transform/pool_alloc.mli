(** Pool allocation (Lattner–Adve, the paper's Algorithm 1).

    Links every heap allocation site to its compiler-identified data
    structure and threads handles to where they are needed:

    - functions whose escaping DSA nodes require a handle gain extra
      [i64] handle parameters (Algorithm 1, lines 4–7);
    - non-escaping nodes get a [ds_init] call at function entry
      (lines 8–10) — each such site is a static {e descriptor};
    - every [malloc] becomes [dsalloc(size, handle)] (line 17);
    - call sites pass the caller's handles for the callee's handle
      parameters (lines 18–21).

    At run time the handle ends up in the non-canonical bits of every
    pointer the allocation returns, which is how [cards_deref] maps an
    address back to its data structure (paper Listing 4). *)

val run : Cards_ir.Irmod.t -> Cards_analysis.Dsa.t -> Cards_ir.Irmod.t
(** Transform the whole module.  The result verifies; [dsa] must have
    been computed on exactly this module. *)
