module Func = Cards_ir.Func
module Instr = Cards_ir.Instr
module Types = Cards_ir.Types
module Vec = Cards_util.Vec

type t = {
  name : string;
  ret : Types.t;
  mutable params : (Instr.reg * Types.t) list;
  tys : Types.t Vec.t;
  binstrs : Instr.instr list Vec.t;
  bterms : Instr.term Vec.t;
}

(* Parameters occupy the low register numbers by convention (see
   {!Cards_ir.Func}); [add_param] appends a fresh register instead of
   renumbering, and [finish] re-establishes the convention by emitting
   parameters in their (reg, ty) order — the interpreter binds actuals
   by the params list, not by position, so appended registers are
   fine. *)

let of_func (f : Func.t) =
  let tys = Vec.create () in
  Array.iter (fun ty -> ignore (Vec.push tys ty)) f.reg_tys;
  let binstrs = Vec.create () and bterms = Vec.create () in
  Array.iter
    (fun (b : Func.block) ->
      ignore (Vec.push binstrs (Array.to_list b.instrs));
      ignore (Vec.push bterms b.term))
    f.blocks;
  { name = f.name; ret = f.ret; params = f.params; tys; binstrs; bterms }

let func_name t = t.name

let fresh_reg t ty = Vec.push t.tys ty

let reg_ty t r = Vec.get t.tys r

let nblocks t = Vec.length t.binstrs

let instrs t b = Vec.get t.binstrs b
let term t b = Vec.get t.bterms b

let set_instrs t b l = Vec.set t.binstrs b l
let set_term t b trm = Vec.set t.bterms b trm

let prepend_entry t l = Vec.set t.binstrs 0 (l @ Vec.get t.binstrs 0)

let add_block t l trm =
  let id = Vec.push t.binstrs l in
  ignore (Vec.push t.bterms trm);
  id

let add_param t ty =
  let r = fresh_reg t ty in
  t.params <- t.params @ [ (r, ty) ];
  r

let finish t =
  let blocks =
    Array.init (nblocks t) (fun i ->
        { Func.bid = i;
          instrs = Array.of_list (Vec.get t.binstrs i);
          term = Vec.get t.bterms i })
  in
  { Func.name = t.name; params = t.params; ret = t.ret;
    reg_tys = Array.of_list (Vec.to_list t.tys); blocks }
