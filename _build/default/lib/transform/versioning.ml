module Func = Cards_ir.Func
module Instr = Cards_ir.Instr
module Types = Cards_ir.Types
module Irmod = Cards_ir.Irmod
module Bitset = Cards_util.Bitset
module A = Cards_analysis

let clean_suffix = "__clean"

let versioned = ref 0
let versioned_loops_last_run () = !versioned

(* ---------- transitive function facts ---------- *)

let transitive_flag m cg ~local_flag =
  let tbl = Hashtbl.create 16 in
  let get f = Option.value (Hashtbl.find_opt tbl f) ~default:false in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun scc ->
        List.iter
          (fun fname ->
            let f = Irmod.find_func m fname in
            let v =
              local_flag f
              || List.exists get (A.Callgraph.callees cg fname)
            in
            if v <> get fname then begin
              Hashtbl.replace tbl fname v;
              changed := true
            end)
          scc)
      (A.Callgraph.bottom_up cg)
  done;
  get

let has_guard (f : Func.t) =
  Func.fold_instrs f
    (fun acc _ _ ins -> acc || match ins with Instr.Guard _ -> true | _ -> false)
    false

let has_alloc (f : Func.t) =
  Func.fold_instrs f
    (fun acc _ _ ins ->
      acc || match ins with Instr.Malloc _ | Instr.DsAlloc _ -> true | _ -> false)
    false

(* ---------- clean function bodies ---------- *)

let strip_and_redirect ~has_clean (f : Func.t) ~rename =
  let map_block (b : Func.block) =
    let instrs =
      Array.of_list
        (List.filter_map
           (fun ins ->
             match ins with
             | Instr.Guard _ -> None
             | Instr.Call (r, callee, args) when has_clean callee ->
               Some (Instr.Call (r, callee ^ clean_suffix, args))
             | _ -> Some ins)
           (Array.to_list b.instrs))
    in
    { b with Func.instrs }
  in
  let f' = Func.map_blocks f map_block in
  { f' with Func.name = rename f.Func.name }

(* ---------- per-loop versioning ---------- *)

(* Loop-invariant pointer values available to name each accessed node. *)
let find_check_bases dsa cfg (f : Func.t) (loop : A.Loops.loop) nodes =
  let fname = f.Func.name in
  (* Candidate values: pointer-typed params and every pointer value
     operand mentioned in the loop that is loop-invariant. *)
  let candidates = ref [] in
  let consider v =
    match v with
    | Instr.Reg r
      when Types.is_pointer f.reg_tys.(r) && A.Indvars.loop_invariant cfg loop v ->
      candidates := v :: !candidates
    | _ -> ()
  in
  List.iter (fun (r, ty) -> if Types.is_pointer ty then consider (Instr.Reg r)) f.params;
  Func.iter_instrs f (fun bid _ ins ->
      if Bitset.mem loop.A.Loops.body bid then
        List.iter consider (Instr.used_values ins));
  let candidates = List.sort_uniq compare !candidates in
  let base_for n =
    List.find_opt
      (fun v ->
        match A.Dsa.node_of_value dsa ~fname v with
        | Some n' -> A.Dsa.canonical dsa n' = n
        | None -> false)
      candidates
  in
  let rec collect acc = function
    | [] -> Some (List.sort_uniq compare acc)
    | n :: rest -> begin
      match base_for n with
      | Some v -> collect (v :: acc) rest
      | None -> None
    end
  in
  collect [] nodes

(* Heap nodes the loop may touch; [None] if unversionable. *)
let loop_accessed_nodes m dsa ~no_alloc (f : Func.t) (loop : A.Loops.loop) =
  let fname = f.Func.name in
  let nodes = ref [] in
  let ok = ref true in
  Func.iter_instrs f (fun bid idx ins ->
      if Bitset.mem loop.A.Loops.body bid then
        match ins with
        | Instr.Malloc _ | Instr.DsAlloc _ -> ok := false
        | Instr.Load (_, _, addr) | Instr.Store (_, addr, _) ->
          if A.Dsa.value_is_managed dsa ~fname addr then begin
            match A.Dsa.node_of_value dsa ~fname addr with
            | Some n -> nodes := A.Dsa.canonical dsa n :: !nodes
            | None -> ok := false
          end
        | Instr.Call (_, callee, _) when Irmod.has_func m callee ->
          if not (no_alloc callee) then ok := false
          else begin
            let caller_nodes, hidden =
              A.Dsa.callsite_accessed_nodes dsa ~fname ~bid ~idx
            in
            if hidden <> [] then ok := false
            else
              nodes :=
                List.map (A.Dsa.canonical dsa) caller_nodes @ !nodes
          end
        | _ -> ());
  if !ok then Some (List.sort_uniq compare !nodes) else None

let version_loops m dsa ~no_alloc ~has_clean (f : Func.t) =
  let cfg = A.Cfg.of_func f in
  let dom = A.Dominators.compute cfg in
  let loops = A.Loops.compute cfg dom in
  let ls = A.Loops.loops loops in
  let outer =
    Array.to_list ls |> List.filter (fun l -> l.A.Loops.parent = None)
  in
  if outer = [] then f
  else begin
    let rw = Rewrite.of_func f in
    List.iter
      (fun (loop : A.Loops.loop) ->
        if loop.A.Loops.header <> 0 then begin
          match loop_accessed_nodes m dsa ~no_alloc f loop with
          | None -> ()
          | Some [] -> () (* nothing managed: versioning pointless *)
          | Some nodes -> begin
            match find_check_bases dsa cfg f loop nodes with
            | None -> ()
            | Some bases ->
              incr versioned;
              (* Clone the loop body: clean copy. *)
              let mapping = Hashtbl.create 8 in
              Bitset.iter
                (fun bid ->
                  let nb = Rewrite.add_block rw [] Instr.Unreachable in
                  Hashtbl.replace mapping bid nb)
                loop.A.Loops.body;
              let remap b = Option.value (Hashtbl.find_opt mapping b) ~default:b in
              Bitset.iter
                (fun bid ->
                  let nb = Hashtbl.find mapping bid in
                  let clean_instrs =
                    List.filter_map
                      (fun ins ->
                        match ins with
                        | Instr.Guard _ -> None
                        | Instr.Call (r, callee, args) when has_clean callee ->
                          Some (Instr.Call (r, callee ^ clean_suffix, args))
                        | _ -> Some ins)
                      (Rewrite.instrs rw bid)
                  in
                  Rewrite.set_instrs rw nb clean_instrs;
                  Rewrite.set_term rw nb
                    (match Rewrite.term rw bid with
                     | Instr.Br s -> Instr.Br (remap s)
                     | Instr.Cbr (v, a, b) -> Instr.Cbr (v, remap a, remap b)
                     | t -> t))
                loop.A.Loops.body;
              (* Dispatch block: LoopCheck then branch. *)
              let chk = Rewrite.fresh_reg rw Types.I64 in
              let clean_header = Hashtbl.find mapping loop.A.Loops.header in
              let dispatch =
                Rewrite.add_block rw
                  [ Instr.LoopCheck (chk, bases) ]
                  (Instr.Cbr (Instr.Reg chk, clean_header, loop.A.Loops.header))
              in
              (* Retarget out-of-loop entries of the header to dispatch. *)
              for b = 0 to Rewrite.nblocks rw - 1 do
                if
                  b <> dispatch
                  && not (Bitset.mem loop.A.Loops.body b)
                  && not (Hashtbl.mem mapping b)
                  && (match Hashtbl.fold (fun _ nb acc -> acc || nb = b) mapping false with
                      | cloned -> not cloned)
                then begin
                  let retarget s = if s = loop.A.Loops.header then dispatch else s in
                  Rewrite.set_term rw b
                    (match Rewrite.term rw b with
                     | Instr.Br s -> Instr.Br (retarget s)
                     | Instr.Cbr (v, a, c) -> Instr.Cbr (v, retarget a, retarget c)
                     | t -> t)
                end
              done
          end
        end)
      outer;
    Rewrite.finish rw
  end

let run (m : Irmod.t) dsa =
  versioned := 0;
  let cg = A.Callgraph.compute m in
  let guard_bearing = transitive_flag m cg ~local_flag:has_guard in
  let allocates = transitive_flag m cg ~local_flag:has_alloc in
  let no_alloc f = not (allocates f) in
  let has_clean f =
    Irmod.has_func m f && guard_bearing f && no_alloc f
  in
  (* Clean versions of eligible functions. *)
  let clean_funcs =
    List.filter_map
      (fun (f : Func.t) ->
        if has_clean f.name then
          Some (strip_and_redirect ~has_clean f ~rename:(fun n -> n ^ clean_suffix))
        else None)
      m.funcs
  in
  (* Version loops in the original functions (not in clean copies —
     they are already clean). *)
  let originals =
    List.map (version_loops m dsa ~no_alloc ~has_clean) m.funcs
  in
  let m' = Irmod.replace_funcs m (originals @ clean_funcs) in
  Cards_ir.Verify.check_exn m';
  m'
