module Func = Cards_ir.Func
module Instr = Cards_ir.Instr
module Irmod = Cards_ir.Irmod
module Dsa = Cards_analysis.Dsa

let transform_func dsa (f : Func.t) =
  let fname = f.name in
  let rw = Rewrite.of_func f in
  for bid = 0 to Rewrite.nblocks rw - 1 do
    let out =
      List.concat_map
        (fun ins ->
          match ins with
          | Instr.Load (_, _, addr) when Dsa.value_is_managed dsa ~fname addr ->
            [ Instr.Guard (Instr.Gread, addr); ins ]
          | Instr.Store (_, addr, _) when Dsa.value_is_managed dsa ~fname addr ->
            [ Instr.Guard (Instr.Gwrite, addr); ins ]
          | _ -> [ ins ])
        (Rewrite.instrs rw bid)
    in
    Rewrite.set_instrs rw bid out
  done;
  Rewrite.finish rw

let run (m : Irmod.t) dsa =
  let m' = Irmod.replace_funcs m (List.map (transform_func dsa) m.funcs) in
  Cards_ir.Verify.check_exn m';
  m'

let count_guards (m : Irmod.t) =
  List.fold_left
    (fun acc f ->
      Func.fold_instrs f
        (fun acc _ _ ins -> match ins with Instr.Guard _ -> acc + 1 | _ -> acc)
        acc)
    0 m.funcs
