(** Redundant guard elimination (paper §4.1).

    Two optimization levels, mirroring the two systems compared in the
    paper:

    - [Ltrackfm] — block-local elimination of syntactically identical
      guards only.  This models TrackFM, whose "optimizations … only
      apply to induction variables".
    - [Lcards] — additionally (a) dedups guards that provably target
      the same {e object} (same root pointer, offsets within one
      object-size window — "If multiple memory locations map to the
      same object, a check occurs only once"), and (b) hoists guards
      with loop-invariant addresses, including non-induction-variable
      ones, to a loop preheader.

    Both levels invalidate available guards at calls and allocation
    sites (which may evict), and at redefinitions of any register the
    guarded address depends on.  Eliminated/hoisted guards remain
    {e safe} because the runtime keeps a fault fallback for unguarded
    remote accesses (see {!Cards_interp.Machine}). *)

type level = Lnone | Ltrackfm | Lcards

val run :
  Cards_ir.Irmod.t -> Cards_analysis.Dsa.t -> level:level -> Cards_ir.Irmod.t

val removed_last_run : unit -> int
(** Number of guards removed (or hoisted out of loops) by the most
    recent [run] — observability for tests and reports. *)
