module Func = Cards_ir.Func
module Instr = Cards_ir.Instr
module Types = Cards_ir.Types
module Irmod = Cards_ir.Irmod
module Dsa = Cards_analysis.Dsa

let transform_func (m : Irmod.t) dsa (f : Func.t) =
  let fname = f.name in
  let rw = Rewrite.of_func f in
  (* Handles for escaping nodes arrive as appended parameters. *)
  let handle_of : (int, Instr.value) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let r = Rewrite.add_param rw Types.I64 in
      Hashtbl.replace handle_of (Dsa.canonical dsa n) (Instr.Reg r))
    (Dsa.argnodes dsa fname);
  (* Non-escaping nodes are initialized here (ds_init = descriptor). *)
  let inits =
    List.map
      (fun (n, desc_id) ->
        let r = Rewrite.fresh_reg rw Types.I64 in
        Hashtbl.replace handle_of (Dsa.canonical dsa n) (Instr.Reg r);
        Instr.DsInit (r, desc_id))
      (Dsa.init_nodes dsa fname)
  in
  let handle n =
    match Hashtbl.find_opt handle_of (Dsa.canonical dsa n) with
    | Some h -> h
    | None -> Instr.Imm 0L (* untracked: runtime default pool *)
  in
  for bid = 0 to Rewrite.nblocks rw - 1 do
    let mapped =
      List.mapi
        (fun idx ins ->
          match ins with
          | Instr.Malloc (r, size) -> begin
            match Dsa.malloc_node dsa ~fname ~bid ~idx with
            | Some n -> Instr.DsAlloc (r, size, handle n)
            | None -> Instr.DsAlloc (r, size, Instr.Imm 0L)
          end
          | Instr.Call (ropt, callee, args) when Irmod.has_func m callee -> begin
            match Dsa.callsite_bindings dsa ~fname ~bid ~idx with
            | [] -> ins
            | bindings ->
              Instr.Call (ropt, callee, args @ List.map handle bindings)
          end
          | _ -> ins)
        (Rewrite.instrs rw bid)
    in
    Rewrite.set_instrs rw bid mapped
  done;
  Rewrite.prepend_entry rw inits;
  Rewrite.finish rw

let run (m : Irmod.t) dsa =
  let funcs = List.map (transform_func m dsa) m.funcs in
  let m' = Irmod.replace_funcs m funcs in
  Cards_ir.Verify.check_exn m';
  m'
