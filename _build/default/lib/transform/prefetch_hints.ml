module Dsa = Cards_analysis.Dsa

type pclass = No_prefetch | Stride | Greedy_recursive | Jump_pointer

let classify (d : Dsa.desc_info) =
  if d.desc_recursive then begin
    if d.desc_ptr_fields >= 2 then Greedy_recursive else Jump_pointer
  end
  else if d.desc_strided then Stride
  else No_prefetch

let pow2_ceil x =
  let rec go p = if p >= x then p else go (p * 2) in
  go 8

let object_size (d : Dsa.desc_info) =
  if d.desc_recursive then pow2_ceil (max 8 d.desc_elem_size)
  else max 4096 (pow2_ceil d.desc_elem_size)

let pclass_name = function
  | No_prefetch -> "none"
  | Stride -> "stride"
  | Greedy_recursive -> "greedy"
  | Jump_pointer -> "jump"
