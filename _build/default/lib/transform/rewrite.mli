(** Mutable function-rewriting scaffold shared by all transformation
    passes: fresh registers, block editing, block insertion, parameter
    appending — then freeze back to an immutable {!Cards_ir.Func.t}. *)

type t

val of_func : Cards_ir.Func.t -> t

val func_name : t -> string

val fresh_reg : t -> Cards_ir.Types.t -> Cards_ir.Instr.reg

val reg_ty : t -> Cards_ir.Instr.reg -> Cards_ir.Types.t

val nblocks : t -> int

val instrs : t -> int -> Cards_ir.Instr.instr list
val term : t -> int -> Cards_ir.Instr.term

val set_instrs : t -> int -> Cards_ir.Instr.instr list -> unit
val set_term : t -> int -> Cards_ir.Instr.term -> unit

val prepend_entry : t -> Cards_ir.Instr.instr list -> unit
(** Insert instructions at the very start of the entry block. *)

val add_block :
  t -> Cards_ir.Instr.instr list -> Cards_ir.Instr.term -> int
(** Append a new block; returns its id. *)

val add_param : t -> Cards_ir.Types.t -> Cards_ir.Instr.reg
(** Append a parameter.  Parameter registers must stay [0..arity-1],
    so this renumbers: a fresh register is allocated and returned. *)

val finish : t -> Cards_ir.Func.t
