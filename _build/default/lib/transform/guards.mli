(** Guard insertion.

    Far-memory safety requires every access to a possibly-remote object
    to be preceded by a guard that localizes it (paper §4.2, Fig. 3:
    custody check on the non-canonical bits, then [cards_deref]).  Both
    CaRDS and TrackFM insert guards this way; they differ in how many
    guards later passes can remove and in what the runtime charges per
    guard, not in insertion.

    A load/store needs a guard iff its address may point into a heap
    data structure according to DSA; accesses to globals and
    provably-unmanaged pointers are left bare. *)

val run : Cards_ir.Irmod.t -> Cards_analysis.Dsa.t -> Cards_ir.Irmod.t
(** Insert a [Guard] immediately before every managed load/store.
    [dsa] must describe this module (typically the post-pool-allocation
    module). *)

val count_guards : Cards_ir.Irmod.t -> int
(** Static guard count (used by tests and the evaluation's
    "10 billion guard checks" style reporting). *)
