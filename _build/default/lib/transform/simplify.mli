(** Classic scalar simplifications on the IR: constant folding,
    dominance-gated copy/constant propagation, branch folding, and
    dead-code elimination.

    NOELLE-style middle-end cleanups that run before the CaRDS passes
    (fewer instructions → fewer guards to place and faster simulation).
    Semantics-preserving with two deliberate exceptions that real
    compilers share:

    - division/remainder by a {e constant} zero is never folded (the
      trap must survive);
    - loads whose results are unused are deleted — program outputs are
      unchanged, but the runtime sees fewer accesses (that is the
      point of an optimizer).

    Off by default in {!Cards.Pipeline} ({!Cards.Pipeline.options});
    the differential fuzz suite checks output equivalence. *)

val run_func : Cards_ir.Func.t -> Cards_ir.Func.t
(** Iterate fold → propagate → branch-fold → DCE to a fixpoint. *)

val run : Cards_ir.Irmod.t -> Cards_ir.Irmod.t
(** Simplify every function; the result verifies. *)

val removed_last_run : unit -> int
(** Instructions deleted by the most recent [run]. *)
