(** Code versioning for selective remoting (paper §4.1, Listing 3).

    CaRDS keeps two versions of hot code: one instrumented with guards
    and one clean.  Before entering a loop, a runtime check
    ([LoopCheck], the paper's [cards_check_ds]) asks whether every data
    structure the loop may touch is currently localized; if so,
    execution branches to the uninstrumented copy.

    A loop is {e versionable} when the compiler can enumerate the data
    structures it may touch via loop-invariant base pointers:

    - every managed access in the loop must belong to a DSA node for
      which some loop-invariant pointer value exists (the runtime
      extracts the data-structure id from that pointer's non-canonical
      bits);
    - callees reached from the loop must not allocate (an allocation
      could demote a checked structure mid-loop) and must not touch
      callee-internal structures invisible to the caller;
    - the loop itself must not allocate.

    Calls inside the clean copy are redirected to clean callee versions
    ([<name>__clean]), which are generated for every guard-bearing,
    allocation-free function. *)

val clean_suffix : string
(** ["__clean"]. *)

val run : Cards_ir.Irmod.t -> Cards_analysis.Dsa.t -> Cards_ir.Irmod.t
(** [dsa] must describe exactly this module (post guard insertion /
    elimination). *)

val versioned_loops_last_run : unit -> int
(** How many loops received a clean copy in the most recent [run]. *)
