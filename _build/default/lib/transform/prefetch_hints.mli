(** Per-data-structure prefetch classification (paper §4.1 "Prefetching
    analysis" and §4.2 "Prefetching Policy Selection").

    CaRDS supports three compiler prefetchers — a majority stride-based
    prefetcher, a greedy recursive prefetcher, and a jump-pointer
    prefetcher — and assigns the most appropriate one to each data
    structure from its static shape:

    - flat structures with loop-strided addressing → [Stride];
    - recursive structures with a single pointer field (lists) →
      [Jump_pointer] (jump pointers beat greedy fan-out on linear
      chains);
    - recursive structures with several pointer fields (trees) →
      [Greedy_recursive];
    - everything else → [No_prefetch].

    Also fixes the object-size hint handed to [ds_init]: recursive
    structures use their node size, flat structures are chunked into
    4 KiB objects (paper §4.2: "char ds[4096] could correspond to a
    single CaRDS object"). *)

type pclass = No_prefetch | Stride | Greedy_recursive | Jump_pointer

val classify : Cards_analysis.Dsa.desc_info -> pclass

val object_size : Cards_analysis.Dsa.desc_info -> int
(** Power-of-two object size the runtime should use for the
    structure. *)

val pclass_name : pclass -> string
