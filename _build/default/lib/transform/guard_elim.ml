module Func = Cards_ir.Func
module Instr = Cards_ir.Instr
module Irmod = Cards_ir.Irmod
module A = Cards_analysis

type level = Lnone | Ltrackfm | Lcards

let removed = ref 0
let removed_last_run () = !removed

(* ---------- address keys ---------- *)

(* Resolve an address to (root value, constant byte offset) through
   single-definition GEP chains.  Multiply-defined registers (loop
   carried pointers) stop the chain — their values are not stable. *)
let build_single_defs (f : Func.t) =
  let counts = Hashtbl.create 32 in
  let defs = Hashtbl.create 32 in
  Func.iter_instrs f (fun _ _ ins ->
      match Instr.defined_reg ins with
      | Some r ->
        Hashtbl.replace counts r (1 + Option.value (Hashtbl.find_opt counts r) ~default:0);
        Hashtbl.replace defs r ins
      | None -> ());
  fun r ->
    match Hashtbl.find_opt counts r with
    | Some 1 -> Hashtbl.find_opt defs r
    | _ -> None

let rec resolve_root single_def v =
  match v with
  | Instr.Reg r -> begin
    match single_def r with
    | Some (Instr.Gep (_, base, Instr.Imm off, scale)) ->
      let root, o = resolve_root single_def base in
      (root, o + (Int64.to_int off * scale))
    | Some (Instr.Mov (_, src)) -> resolve_root single_def src
    | _ -> (v, 0)
  end
  | _ -> (v, 0)

(* Smallest object window any instance behind this address could use;
   conservative fallback of one scalar (8 bytes) when unknown. *)
let window_of dsa ~fname addr =
  match A.Dsa.node_of_value dsa ~fname addr with
  | None -> 8
  | Some n -> begin
    match A.Dsa.node_descs dsa n with
    | [] -> 8
    | descs ->
      List.fold_left
        (fun acc id ->
          let d = A.Dsa.desc_info dsa id in
          let sz =
            if d.desc_recursive then max 8 d.desc_elem_size
            else max d.desc_elem_size 4096
          in
          min acc sz)
        max_int descs
  end

type key =
  | Ksyn of Instr.value          (* identical address value *)
  | Kobj of Instr.value * int    (* (root, offset / window) *)

let value_mentions_reg v r =
  match v with Instr.Reg x -> x = r | _ -> false

let key_mentions_reg k r =
  match k with
  | Ksyn v -> value_mentions_reg v r
  | Kobj (v, _) -> value_mentions_reg v r

(* ---------- block-local dedup ---------- *)

let dedup_block ~level dsa ~fname single_def instrs =
  (* available : key -> guard_kind already established *)
  let avail : (key, Instr.guard_kind) Hashtbl.t = Hashtbl.create 8 in
  let covers established wanted =
    match established, wanted with
    | Instr.Gwrite, _ -> true
    | Instr.Gread, Instr.Gread -> true
    | Instr.Gread, Instr.Gwrite -> false
  in
  let keys_of addr =
    let syn = Ksyn addr in
    match level with
    | Lcards ->
      let root, off = resolve_root single_def addr in
      let w = window_of dsa ~fname addr in
      [ syn; Kobj (root, if w <= 0 then off else off / w) ]
    | Ltrackfm | Lnone -> [ syn ]
  in
  let out =
    List.filter_map
      (fun ins ->
        match ins with
        | Instr.Guard (k, addr) ->
          let keys = keys_of addr in
          let is_covered =
            List.exists
              (fun key ->
                match Hashtbl.find_opt avail key with
                | Some est -> covers est k
                | None -> false)
              keys
          in
          if is_covered then begin
            incr removed;
            None
          end
          else begin
            List.iter
              (fun key ->
                let est =
                  match Hashtbl.find_opt avail key with
                  | Some Instr.Gwrite -> Instr.Gwrite
                  | _ -> k
                in
                Hashtbl.replace avail key est)
              keys;
            Some ins
          end
        | Instr.Call _ | Instr.Malloc _ | Instr.DsAlloc _ | Instr.Free _ ->
          (* may allocate/evict: all prior localizations are suspect *)
          Hashtbl.reset avail;
          Some ins
        | _ ->
          (match Instr.defined_reg ins with
           | Some r ->
             let stale =
               Hashtbl.fold
                 (fun k _ acc -> if key_mentions_reg k r then k :: acc else acc)
                 avail []
             in
             List.iter (Hashtbl.remove avail) stale
           | None -> ());
          Some ins)
      instrs
  in
  out

(* ---------- loop-invariant hoisting ---------- *)

(* A guard's address is hoistable when it is computed, inside the loop,
   purely from loop-invariant leaves through a chain of single-def
   Gep/Mov instructions — the non-induction-variable case the paper
   credits CaRDS with ("guard optimizations apply to non-induction
   variables as well").  Returns the chain of defining instructions
   (in dependency order) that must be replayed in the preheader so the
   address register holds its value there; [Some []] means the address
   is directly invariant. *)
let invariant_chain cfg loop single_def addr =
  let rec chain v acc depth =
    if depth > 16 then None
    else if A.Indvars.loop_invariant cfg loop v then Some acc
    else
      match v with
      | Instr.Reg r -> begin
        match single_def r with
        | Some (Instr.Gep (_, base, idx, _) as ins) -> begin
          match chain base acc (depth + 1) with
          | Some acc -> begin
            match chain idx acc (depth + 1) with
            | Some acc -> Some (ins :: acc)
            | None -> None
          end
          | None -> None
        end
        | Some (Instr.Mov (_, src) as ins) -> begin
          match chain src acc (depth + 1) with
          | Some acc -> Some (ins :: acc)
          | None -> None
        end
        | _ -> None
      end
      | _ -> None
  in
  Option.map List.rev (chain addr [] 0)

(* One hoisting round; returns true if anything moved. *)
let hoist_round rw =
  let f = Rewrite.finish rw in
  let cfg = A.Cfg.of_func f in
  let dom = A.Dominators.compute cfg in
  let loops = A.Loops.compute cfg dom in
  let ls = A.Loops.loops loops in
  let single_def = build_single_defs f in
  let moved = ref false in
  (* Deepest loops first so guards bubble outward one level at a time. *)
  let order = Array.init (Array.length ls) (fun i -> i) in
  Array.sort (fun a b -> compare ls.(b).A.Loops.depth ls.(a).A.Loops.depth) order;
  Array.iter
    (fun li ->
      let loop = ls.(li) in
      if loop.A.Loops.header <> 0 then begin
        let hoistable = ref [] in
        Cards_util.Bitset.iter
          (fun bid ->
            let keep =
              List.filter
                (fun ins ->
                  match ins with
                  | Instr.Guard (_, addr) -> begin
                    match invariant_chain cfg loop single_def addr with
                    | Some chain ->
                      hoistable := (chain, ins) :: !hoistable;
                      false
                    | None -> true
                  end
                  | _ -> true)
                (Rewrite.instrs rw bid)
            in
            Rewrite.set_instrs rw bid keep)
          loop.A.Loops.body;
        match List.rev !hoistable with
        | [] -> ()
        | picked ->
          (* Replay each address chain (deduplicated) then the guards. *)
          let seen = Hashtbl.create 8 in
          let gs =
            List.concat_map
              (fun (chain, g) ->
                let replay =
                  List.filter
                    (fun ins ->
                      if Hashtbl.mem seen ins then false
                      else begin
                        Hashtbl.replace seen ins ();
                        true
                      end)
                    chain
                in
                replay @ [ g ])
              picked
          in
          moved := true;
          (* Reuse an existing preheader or synthesize one. *)
          (match A.Loops.preheader cfg loop with
           | Some p -> Rewrite.set_instrs rw p (Rewrite.instrs rw p @ gs)
           | None ->
             let ph = Rewrite.add_block rw gs (Instr.Br loop.A.Loops.header) in
             for b = 0 to Rewrite.nblocks rw - 1 do
               if b <> ph && not (Cards_util.Bitset.mem loop.A.Loops.body b) then begin
                 let retarget s = if s = loop.A.Loops.header then ph else s in
                 Rewrite.set_term rw b
                   (match Rewrite.term rw b with
                    | Instr.Br s -> Instr.Br (retarget s)
                    | Instr.Cbr (v, a, c) -> Instr.Cbr (v, retarget a, retarget c)
                    | t -> t)
               end
             done)
      end)
    order;
  !moved

let transform_func ~level dsa (f : Func.t) =
  let fname = f.name in
  let rw = Rewrite.of_func f in
  if level = Lcards then begin
    let guard = ref 0 in
    while hoist_round rw && !guard < 8 do incr guard done
  end;
  (* Dedup within blocks (single-def map recomputed on current body). *)
  let cur = Rewrite.finish rw in
  let single_def = build_single_defs cur in
  let rw = Rewrite.of_func cur in
  if level <> Lnone then
    for bid = 0 to Rewrite.nblocks rw - 1 do
      Rewrite.set_instrs rw bid
        (dedup_block ~level dsa ~fname single_def (Rewrite.instrs rw bid))
    done;
  Rewrite.finish rw

let run (m : Irmod.t) dsa ~level =
  removed := 0;
  let m' = Irmod.replace_funcs m (List.map (transform_func ~level dsa) m.funcs) in
  Cards_ir.Verify.check_exn m';
  m'
