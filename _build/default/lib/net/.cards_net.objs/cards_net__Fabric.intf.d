lib/net/fabric.mli:
