lib/net/fabric.ml:
