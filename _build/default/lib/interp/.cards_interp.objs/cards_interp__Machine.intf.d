lib/interp/machine.mli: Cards_ir Cards_runtime
