lib/interp/machine.ml: Array Buffer Cards_ir Cards_runtime Hashtbl Int64 List Printf String
