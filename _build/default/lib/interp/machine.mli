(** IR interpreter / cycle-accurate-enough simulator.

    Executes a (possibly CaRDS-transformed) IR module against a
    {!Cards_runtime.Runtime}: plain instructions charge per-class CPU
    costs, memory instructions go through the runtime's heap (which
    charges guard, fault, and network costs), and the result carries
    the final cycle count every experiment reports.

    Integer and pointer registers are native ints (tagged pointers fit
    in 63 bits); float registers live in an unboxed [float array].

    Functional correctness is independent of the far-memory
    configuration — a property the test suite checks by running every
    workload under multiple policies and comparing outputs. *)

type result = {
  ret : int;               (** main's return value (0 for void) *)
  cycles : int;            (** simulated execution time *)
  instructions : int;      (** IR instructions executed *)
  output : string list;    (** print_int / print_float lines, in order *)
}

exception Trap of string
(** Division by zero, [abort], unknown function, fuel exhausted… *)

val run :
  ?fuel:int -> Cards_ir.Irmod.t -> Cards_runtime.Runtime.t -> result
(** Execute [main].  [fuel] bounds the executed instruction count
    (default: unlimited). *)

val run_function :
  ?fuel:int ->
  Cards_ir.Irmod.t ->
  Cards_runtime.Runtime.t ->
  string ->
  int list ->
  result
(** Execute an arbitrary function with integer/pointer arguments
    (testing hook). *)
