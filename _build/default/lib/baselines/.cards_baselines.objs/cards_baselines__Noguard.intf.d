lib/baselines/noguard.mli: Cards Cards_interp Cards_runtime
