lib/baselines/trackfm.ml: Cards Cards_net Cards_runtime
