lib/baselines/trackfm.mli: Cards Cards_interp Cards_ir Cards_runtime
