lib/baselines/noguard.ml: Cards Cards_runtime
