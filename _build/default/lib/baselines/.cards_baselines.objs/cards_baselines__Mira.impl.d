lib/baselines/mira.ml: Array Cards Cards_net Cards_runtime List
