lib/baselines/mira.mli: Cards Cards_interp Cards_runtime
