(** Streaming summary statistics.

    Used by the runtime to track per-data-structure hit/miss counters
    and by the benchmark harness to report medians over trials, matching
    the paper's "median cycles over 100 trials" methodology (Table 1). *)

type t
(** A mutable accumulator of float observations. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** Mean of observations; 0 when empty. *)

val variance : t -> float
(** Population variance (Welford); 0 when fewer than 2 observations. *)

val stddev : t -> float

val min : t -> float
(** Smallest observation; [infinity] when empty. *)

val max : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]] by nearest-rank over the
    retained samples; 0 when empty. *)

val median : t -> float

val merge : t -> t -> t
(** Combine two accumulators into a fresh one. *)
