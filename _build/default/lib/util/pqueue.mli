(** Binary min-heap priority queue with integer priorities.

    Used by the fabric's event queue (deliveries ordered by simulated
    time) and by policies that rank data structures by score. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> prio:int -> 'a -> unit
(** Insert an element with the given priority (smaller pops first). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-priority element, or [None] if empty.
    Ties pop in unspecified order. *)

val peek : 'a t -> (int * 'a) option
