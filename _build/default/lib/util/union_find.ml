type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else if t.rank.(ra) < t.rank.(rb) then begin
    t.parent.(ra) <- rb; rb
  end else if t.rank.(ra) > t.rank.(rb) then begin
    t.parent.(rb) <- ra; ra
  end else begin
    t.parent.(rb) <- ra;
    t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

let equiv t a b = find t a = find t b

let size t = Array.length t.parent

let count_sets t =
  let n = size t in
  let c = ref 0 in
  for i = 0 to n - 1 do
    if find t i = i then incr c
  done;
  !c

let classes t =
  let tbl = Hashtbl.create 16 in
  for i = 0 to size t - 1 do
    let r = find t i in
    let old = Option.value (Hashtbl.find_opt tbl r) ~default:[] in
    Hashtbl.replace tbl r (i :: old)
  done;
  tbl
