(** Growable arrays (OCaml 5.1 predates [Dynarray]).

    The DSA node arena and the runtime's per-data-structure object
    tables both grow dynamically; this is the shared backing store. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-range index. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> int
(** Append and return the new element's index. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val to_list : 'a t -> 'a list

val ensure : 'a t -> int -> 'a -> unit
(** [ensure v n fill] grows [v] with [fill] until [length v >= n]. *)
