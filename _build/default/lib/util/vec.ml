type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of range (len %d)" i v.len)

let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x

let push v x =
  if v.len = Array.length v.data then begin
    let cap = max 16 (2 * Array.length v.data) in
    let nd = Array.make cap x in
    Array.blit v.data 0 nd 0 v.len;
    v.data <- nd
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let to_list v =
  let acc = ref [] in
  for i = v.len - 1 downto 0 do
    acc := v.data.(i) :: !acc
  done;
  !acc

let ensure v n fill =
  while v.len < n do
    ignore (push v fill)
  done
