type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
  mutable samples : float list; (* retained for percentiles *)
}

let create () =
  { n = 0; mean_acc = 0.0; m2 = 0.0; total = 0.0;
    lo = infinity; hi = neg_infinity; samples = [] }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  t.samples <- x :: t.samples

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0.0 else t.mean_acc
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
let stddev t = sqrt (variance t)
let min t = t.lo
let max t = t.hi

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let a = Array.of_list t.samples in
    Array.sort compare a;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    let idx =
      if rank <= 0 then 0
      else if rank > t.n then t.n - 1
      else rank - 1
    in
    a.(idx)
  end

let median t = percentile t 50.0

let merge a b =
  let t = create () in
  List.iter (add t) (List.rev_append a.samples (List.rev b.samples));
  t
