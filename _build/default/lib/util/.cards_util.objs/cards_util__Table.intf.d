lib/util/table.mli:
