lib/util/bitset.mli:
