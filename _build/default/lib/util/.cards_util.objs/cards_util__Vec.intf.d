lib/util/vec.mli:
