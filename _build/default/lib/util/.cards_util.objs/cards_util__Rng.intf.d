lib/util/rng.mli:
