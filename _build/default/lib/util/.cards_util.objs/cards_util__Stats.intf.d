lib/util/stats.mli:
