lib/util/pqueue.mli:
