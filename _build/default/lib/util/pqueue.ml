type 'a entry = { prio : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty t = t.len = 0
let length t = t.len

let grow t e =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap e in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

let push t ~prio value =
  let e = { prio; value } in
  grow t e;
  t.data.(t.len) <- e;
  t.len <- t.len + 1;
  (* sift up *)
  let i = ref (t.len - 1) in
  while !i > 0 && t.data.((!i - 1) / 2).prio > t.data.(!i).prio do
    let p = (!i - 1) / 2 in
    let tmp = t.data.(p) in
    t.data.(p) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := p
  done

let peek t = if t.len = 0 then None else Some (t.data.(0).prio, t.data.(0).value)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && t.data.(l).prio < t.data.(!smallest).prio then smallest := l;
        if r < t.len && t.data.(r).prio < t.data.(!smallest).prio then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end
