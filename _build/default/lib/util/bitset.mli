(** Dense fixed-size bit sets.

    Dataflow analyses (dominators, liveness for guard elimination) and
    the BFS workload's visited set both want a compact mutable set over
    a dense integer universe. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1]. *)

val capacity : t -> int

val mem : t -> int -> bool
(** Membership; indices outside the universe are simply absent. *)

val add : t -> int -> unit
val remove : t -> int -> unit

val set_all : t -> unit
(** Make the set the full universe. *)

val clear : t -> unit
(** Make the set empty. *)

val cardinal : t -> int

val copy : t -> t

val equal : t -> t -> bool

val inter_into : t -> t -> bool
(** [inter_into dst src] intersects [dst] with [src] in place and
    returns [true] iff [dst] changed. *)

val union_into : t -> t -> bool
(** [union_into dst src] unions [src] into [dst] and returns [true] iff
    [dst] changed. *)

val diff_into : t -> t -> unit
(** [diff_into dst src] removes [src]'s members from [dst]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val to_list : t -> int list
