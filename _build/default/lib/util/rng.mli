(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through this module so that
    every experiment is exactly reproducible from a seed.  The generator
    is SplitMix64 (Steele, Lea & Flood 2014): tiny state, excellent
    statistical quality for simulation purposes, and trivially
    splittable, which lets independent subsystems (workload generator,
    random remoting policy, fabric jitter) draw from decorrelated
    streams derived from one master seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t].  Used to hand decorrelated streams to subsystems. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future outputs). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws from a Zipf distribution over [\[0, n)] with
    exponent [s] by inverse-transform over the truncated harmonic sum.
    Used to generate skewed key popularity (taxi zones, graph degrees). *)

val exponential : t -> mean:float -> float
(** Exponential variate with the given mean (network jitter). *)
