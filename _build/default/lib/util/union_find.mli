(** Disjoint-set forest with union by rank and path compression.

    This is the workhorse of the unification-based data-structure
    analysis ({!Cards_analysis.Dsa}): DSA merges memory-object nodes
    that may alias, and disjoint data structures are exactly the final
    equivalence classes. *)

type t
(** A fixed-capacity disjoint-set structure over [0 .. n-1]. *)

val create : int -> t
(** [create n] makes [n] singleton sets. *)

val find : t -> int -> int
(** Canonical representative (with path compression). *)

val union : t -> int -> int -> int
(** [union t a b] merges the two sets and returns the representative of
    the merged set. *)

val equiv : t -> int -> int -> bool
(** Same set? *)

val count_sets : t -> int
(** Number of distinct sets remaining. *)

val size : t -> int
(** Capacity [n]. *)

val classes : t -> (int, int list) Hashtbl.t
(** Map from representative to the members of its class. *)
