type t = { words : Bytes.t; n : int }

(* One byte per 8 members; Bytes gives cheap blits and equality. *)

let create n = { words = Bytes.make ((n + 7) / 8) '\000'; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  i >= 0 && i < t.n
  && Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.words b
    (Char.chr (Char.code (Bytes.get t.words b) lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.words b
    (Char.chr (Char.code (Bytes.get t.words b) land lnot (1 lsl (i land 7)) land 0xff))

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let set_all t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\255';
  (* Mask off the bits beyond [n] in the final byte so cardinal and
     equality stay meaningful. *)
  let extra = (8 - (t.n land 7)) land 7 in
  if extra > 0 && Bytes.length t.words > 0 then begin
    let last = Bytes.length t.words - 1 in
    Bytes.set t.words last (Char.chr (0xff lsr extra))
  end

let popcount_byte c =
  let x = Char.code c in
  let x = x - ((x lsr 1) land 0x55) in
  let x = (x land 0x33) + ((x lsr 2) land 0x33) in
  (x + (x lsr 4)) land 0x0f

let cardinal t =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte c) t.words;
  !acc

let copy t = { words = Bytes.copy t.words; n = t.n }

let equal a b = a.n = b.n && Bytes.equal a.words b.words

let binop_into f dst src =
  if dst.n <> src.n then invalid_arg "Bitset: universe mismatch";
  let changed = ref false in
  for i = 0 to Bytes.length dst.words - 1 do
    let d = Char.code (Bytes.get dst.words i) in
    let s = Char.code (Bytes.get src.words i) in
    let r = f d s in
    if r <> d then begin
      changed := true;
      Bytes.set dst.words i (Char.chr r)
    end
  done;
  !changed

let inter_into dst src = binop_into (land) dst src
let union_into dst src = binop_into (lor) dst src
let diff_into dst src = ignore (binop_into (fun d s -> d land lnot s land 0xff) dst src)

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc
